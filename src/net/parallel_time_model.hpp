// Sharded run-to-horizon sequencer: the parallel discrete-event engine.
//
// The serial VirtualTimeModel hands a baton between PE threads — exactly
// one runs at a time, and every horizon crossing is a condition-variable
// round trip. This model instead releases *windows* of PEs that run
// concurrently: whenever the global (vtime, pe) frontier is a private
// action, every parked private PE with clock strictly below its per-PE
// horizon
//
//     W(p) = min(frontier + lookahead, earliest pending nbi deadline,
//                earliest parked mid-charge op *targeting p*)
//
// is woken at once and runs unsynchronized until its own clock reaches
// W(p). The lookahead is the minimum blocking remote-op latency of the
// network (NetworkParams::min_remote_latency): any cross-PE effect
// initiated at or after the frontier lands at frontier + lookahead, i.e.
// provably outside every window, so in-window execution touches per-PE
// state only.
//
// Globally ordered actions — cross-PE blocking ops, every nbi enqueue, and
// reads of cross-initiator pending counters — park via global_begin()/
// global_sync() and are released one at a time, exactly at the global
// frontier, with an exact horizon (the next event time). That reproduces
// the serial sequencer's total order bit-for-bit: schedules, nbi sequence
// numbers, per-PE FabricStats and clocks are byte-identical to the serial
// and reference engines (tests/test_determinism_ab.cpp enforces it).
// While parked, a gated PE constrains concurrent windows only by its
// declared conflict footprint (TimeModel::global_begin(pe, target)): a
// pre-charge park (global_begin) or a sync park resumes into state shared
// only with other gated actions and caps nobody; a mid-charge park of a
// blocking op resumes by applying its effect on its target's memory and
// caps that target alone; an opaque-footprint gate (fault injection) caps
// every PE — the fully conservative legacy rule. A PE granted a *solo*
// release stays the unique lex-minimum below its horizon, so its next
// gated action may begin without parking at all (the solo license).
//
// Structure: PEs are partitioned into contiguous shards, one pair of
// ReadyHeaps (private / global parked) plus one mutex per shard. A parker
// touches only its own shard lock; the last runner to park becomes the
// *driver* — it takes every shard lock, fires the delivery hook at the new
// time floor, and releases the next window or solo frontier. now(pe) stays
// a lock-free acquire-load mirror.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/ready_heap.hpp"
#include "net/time_model.hpp"
#include "net/types.hpp"

namespace sws::net {

class ParallelTimeModel final : public TimeModel {
 public:
  /// `shards` worker-lock groups (clamped to [1, npes]); `lookahead` is the
  /// conservative window width — the minimum cost of any cross-PE blocking
  /// op (0 collapses every release to a solo handoff: correct, lockstep).
  ParallelTimeModel(int npes, int shards, Nanos lookahead);
  ~ParallelTimeModel() override;

  void reset(int npes) override;
  void pe_begin(int pe) override;
  void pe_end(int pe) override;
  void advance(int pe, Nanos dt) override;

  /// Lock-free acquire-load of the PE's published clock. Exact for the
  /// owning thread and for anything ordered after it (joins, releases).
  Nanos now(int pe) const override;

  void clamp_horizon(int pe, Nanos deadline) override;
  void set_delivery_hook(DeliveryHook hook) override;
  void set_sample_hook(SampleHook hook, Nanos interval_ns) override;
  bool is_virtual() const noexcept override { return true; }
  int npes() const noexcept override { return static_cast<int>(slots_.size()); }

  void global_begin(int pe) override;
  void global_begin(int pe, int target) override;
  void global_end(int pe) override;
  void global_sync(int pe) override;
  bool concurrent_windows() const noexcept override { return true; }

  // --- engine introspection (obs layer, bench) ---------------------------
  struct EngineStats {
    std::uint64_t windows = 0;       ///< multi-PE concurrent releases
    std::uint64_t window_pes = 0;    ///< PEs woken across all windows
    std::uint64_t solo_private = 0;  ///< solo frontier releases (private)
    std::uint64_t solo_global = 0;   ///< serialized global ops / syncs
    std::uint64_t cap_lookahead = 0;  ///< window edge set by the lookahead
    std::uint64_t cap_global = 0;     ///< ... by an opaque-footprint gate
    std::uint64_t cap_deadline = 0;   ///< ... by a pending nbi deadline
    std::uint64_t cap_target = 0;  ///< window PEs horizon-capped per-target
    std::uint64_t deferred = 0;    ///< window candidates held back by a cap
    std::uint64_t license_skips = 0;  ///< global parks elided by the
                                      ///< solo-frontier license
    std::uint64_t parks = 0;          ///< every park event, all PEs
  };
  EngineStats engine_stats() const;
  int nshards() const noexcept { return static_cast<int>(shards_.size()); }
  /// Releases granted to PEs of shard `s` (driver-written, read post-run).
  std::uint64_t shard_releases(int s) const { return shard_releases_[s]; }
  Nanos lookahead() const noexcept { return lookahead_; }

 private:
  struct alignas(64) PeSlot {
    /// Authoritative clock, written only by the owning PE thread (or by
    /// reset). Atomic so now() can mirror it lock-free.
    std::atomic<Nanos> vtime{0};
    /// Run-to cap: advance() is lock-free while strictly below this.
    /// Written by the driver before release; the shard-mutex handoff
    /// orders the accesses.
    Nanos horizon = 0;
    /// Set between global_begin and global_end: a horizon crossing inside
    /// a globally ordered op parks into the *global* heap so the op's
    /// charge/effect stay at their exact serial position.
    bool in_global = false;
    /// Conflict footprint declared at global_begin: the PE id whose
    /// observable state this gate's action touches when resuming from an
    /// in-gate park, or a TimeModel sentinel. Owner-written while running;
    /// driver-read while the owner is parked (shard-mutex ordered).
    int gtarget = -1;  // TimeModel::kOpaqueTarget
    /// Why this PE is parked (meaningful only while in a heap): a private
    /// horizon crossing, the pre-charge park at global_begin, a mid-charge
    /// crossing inside a gate, or a global_sync read barrier. Determines
    /// whether the park caps concurrent windows (see drive()).
    enum class Park : std::uint8_t { kPriv, kBegin, kMid, kSync };
    Park park_kind = Park::kPriv;
    /// Solo-frontier license: set by the driver on a solo release. While
    /// the clock stays strictly below the granted horizon the PE remains
    /// the unique lex-minimum of the system (the horizon was derived from
    /// the next parked clock and the pending-delivery floor), so a
    /// globally ordered action may *begin* without parking — the park
    /// would be released immediately with identical state. Cleared on
    /// every park; never set for window releases (peers run concurrently).
    bool solo_license = false;
    /// Wake predicate. The release-store (after horizon is written) pairs
    /// with the waiter's acquire-load, so the granted horizon is visible
    /// without the waiter ever touching a shard lock on wakeup.
    std::atomic<bool> released{false};
    /// Per-slot wait channel, *not* the shard mutex: the driver drops every
    /// shard lock before notifying, so a woken PE resumes immediately
    /// instead of piling up behind the driver's locks (on few-core hosts
    /// that re-block would double the context switches per release).
    std::mutex mu;
    std::condition_variable cv;
  };

  struct Shard {
    std::mutex mu;
    ReadyHeap priv;  ///< parked private PEs, keyed (vtime, pe)
    ReadyHeap glob;  ///< parked globally ordered PEs
  };

  /// Insert `pe` into its shard heap, hand off runner-ship, and block
  /// until the driver releases it. The last runner to park drives.
  void park_and_wait(int pe, PeSlot::Park kind);
  /// Sole executor (runs when running_ hits 0): takes every shard lock,
  /// fires the delivery hook at the frontier, pops the release batch and
  /// writes its horizons, then *drops the locks* before waking anyone —
  /// either a window of private PEs or the solo frontier.
  void drive();

  std::vector<std::unique_ptr<PeSlot>> slots_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_of_;  ///< pe -> shard index
  /// PEs currently running (not parked). The acq_rel fetch_sub chain is
  /// the synchronization backbone: the thread that decrements to zero
  /// observes every earlier parker's state and becomes the driver.
  std::atomic<int> running_{0};
  Nanos lookahead_ = 0;
  int shards_requested_ = 1;
  DeliveryHook hook_;
  /// Windowed sampling (driver-only while running: drive() is serialized
  /// by the running_ chain, and every PE thread is parked when it fires).
  SampleHook sample_hook_;
  Nanos sample_interval_ = 0;  ///< 0 = sampling off
  Nanos next_sample_ = 0;      ///< next unfired boundary

  // Stats: driver-only fields are plain (drive() is serialized by
  // construction); parks_ is touched by every PE thread.
  EngineStats stats_{};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> license_skips_{0};
  std::vector<std::uint64_t> shard_releases_;
  std::vector<int> release_scratch_;  ///< window batch; driver-only
  std::vector<int> defer_scratch_;    ///< cap-blocked candidates; driver-only
  // Per-target window caps, epoch-stamped so a drive never pays O(npes)
  // to clear them: cap_[p] is valid only when cap_epoch_[p] == epoch_.
  std::vector<Nanos> cap_;
  std::vector<std::uint64_t> cap_epoch_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sws::net
