// Shared vocabulary types for the simulated network layer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sws::net {

/// Simulated (or real) time in nanoseconds.
using Nanos = std::uint64_t;

/// Topology tier distance between two PEs: 0 = self, 1 = innermost shared
/// group (same node on a two-level fabric), up to Topology::ntiers() for
/// the whole machine (see net/topology.hpp).
using Tier = int;

/// Upper bound on link tiers a topology spec may describe. Six covers
/// core/socket/node/chassis/rack/machine with room to spare and keeps
/// per-tier counter arrays inline.
inline constexpr int kMaxTiers = 6;

/// One-sided operation kinds, mirroring the OpenSHMEM surface the paper's
/// runtime uses (put/get, fetching AMOs, and their non-blocking variants).
enum class OpKind : int {
  kPut = 0,
  kGet,
  kAmoFetchAdd,
  kAmoCompareSwap,
  kAmoSwap,
  kAmoFetch,
  kAmoSet,
  kNbiPut,
  kNbiAmoAdd,
  kNbiAmoSet,
  kCount_,
};

inline constexpr std::size_t kNumOpKinds =
    static_cast<std::size_t>(OpKind::kCount_);

const char* op_kind_name(OpKind k) noexcept;

/// Per-PE communication accounting. The paper's headline claim is a comm
/// *count* reduction (6 → 3 per steal, 5 → 2 blocking); these counters are
/// what lets the benches verify that claim directly (Fig 2).
struct FabricStats {
  std::array<std::uint64_t, kNumOpKinds> ops{};
  std::uint64_t remote_ops = 0;   ///< ops whose target != initiator
  std::uint64_t local_ops = 0;    ///< ops whose target == initiator
  /// Remote ops by topology tier distance: tier_ops[t-1] counts ops whose
  /// target sits at distance t. Sums to remote_ops.
  std::array<std::uint64_t, kMaxTiers> tier_ops{};
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_got = 0;
  std::uint64_t blocking_ns = 0;  ///< total initiator-blocking time
  std::uint64_t occupancy_wait_ns = 0;  ///< queueing behind a busy target NIC
  /// Ops issued against a crashed PE: charged but effect-free, fetches
  /// returning the poison value (net/fabric.hpp kDeadFetchValue).
  std::uint64_t dead_target_ops = 0;

  std::uint64_t total_ops() const noexcept {
    std::uint64_t t = 0;
    for (auto v : ops) t += v;
    return t;
  }
  /// Blocking (initiator-stalling) remote op count: everything except nbi.
  std::uint64_t blocking_ops() const noexcept {
    return total_ops() - ops[static_cast<int>(OpKind::kNbiPut)] -
           ops[static_cast<int>(OpKind::kNbiAmoAdd)] -
           ops[static_cast<int>(OpKind::kNbiAmoSet)];
  }
  void merge(const FabricStats& o) noexcept {
    for (std::size_t i = 0; i < kNumOpKinds; ++i) ops[i] += o.ops[i];
    remote_ops += o.remote_ops;
    local_ops += o.local_ops;
    for (std::size_t i = 0; i < tier_ops.size(); ++i)
      tier_ops[i] += o.tier_ops[i];
    bytes_put += o.bytes_put;
    bytes_got += o.bytes_got;
    blocking_ns += o.blocking_ns;
    occupancy_wait_ns += o.occupancy_wait_ns;
    dead_target_ops += o.dead_target_ops;
  }
};

}  // namespace sws::net
