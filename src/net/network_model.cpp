#include "net/network_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace sws::net {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kAmoFetchAdd: return "amo_fetch_add";
    case OpKind::kAmoCompareSwap: return "amo_cswap";
    case OpKind::kAmoSwap: return "amo_swap";
    case OpKind::kAmoFetch: return "amo_fetch";
    case OpKind::kAmoSet: return "amo_set";
    case OpKind::kNbiPut: return "nbi_put";
    case OpKind::kNbiAmoAdd: return "nbi_amo_add";
    case OpKind::kNbiAmoSet: return "nbi_amo_set";
    case OpKind::kCount_: break;
  }
  return "?";
}

namespace {

Nanos scale_ns(Nanos v, double factor) noexcept {
  return static_cast<Nanos>(std::llround(static_cast<double>(v) * factor));
}

}  // namespace

LinkParams LinkParams::scaled(double factor) const noexcept {
  LinkParams s = *this;
  s.amo_latency = scale_ns(amo_latency, factor);
  s.get_latency = scale_ns(get_latency, factor);
  s.put_latency = scale_ns(put_latency, factor);
  s.nbi_delay = scale_ns(nbi_delay, factor);
  return s;
}

NetworkParams NetworkParams::two_level(int pes_per_node, double intra_scale,
                                       double intra_bandwidth) {
  NetworkParams p;
  if (pes_per_node <= 0) return p;
  p.topology = TopologySpec::two_level(pes_per_node);
  const LinkParams inter{};
  LinkParams intra = inter.scaled(intra_scale);
  intra.bandwidth = intra_bandwidth;
  p.links = {intra, inter};
  return p;
}

NetworkParams NetworkParams::tiered(TopologySpec spec, double step_scale,
                                    double step_bandwidth) {
  NetworkParams p;
  p.topology = std::move(spec);
  const int nt = p.topology.ntiers();
  p.links.assign(static_cast<std::size_t>(nt), LinkParams{});
  // Outermost keeps the defaults; each step inward gets faster.
  for (int t = nt - 1; t >= 1; --t) {
    const LinkParams& outer = p.links[static_cast<std::size_t>(t)];
    LinkParams inner = outer.scaled(step_scale);
    inner.bandwidth = outer.bandwidth * step_bandwidth;
    p.links[static_cast<std::size_t>(t - 1)] = inner;
  }
  return p;
}

NetworkParams NetworkParams::scaled(double factor) const {
  NetworkParams s = *this;
  for (LinkParams& l : s.links) l = l.scaled(factor);
  return s;
}

const LinkParams& NetworkParams::link(Tier t) const noexcept {
  SWS_ASSERT(t >= 1 && !links.empty());
  const std::size_t idx = static_cast<std::size_t>(t - 1);
  return links[idx < links.size() ? idx : links.size() - 1];
}

LinkParams& NetworkParams::link(Tier t) noexcept {
  SWS_ASSERT(t >= 1 && !links.empty());
  const std::size_t idx = static_cast<std::size_t>(t - 1);
  return links[idx < links.size() ? idx : links.size() - 1];
}

Nanos NetworkParams::min_remote_latency() const noexcept {
  Nanos m = 0;
  bool first = true;
  for (const LinkParams& l : links) {
    Nanos tier_min = l.amo_latency;
    if (l.get_latency < tier_min) tier_min = l.get_latency;
    if (l.put_latency < tier_min) tier_min = l.put_latency;
    if (first || tier_min < m) m = tier_min;
    first = false;
  }
  return m;
}

void NetworkParams::validate(int npes) const {
  SWS_CHECK(links.size() == static_cast<std::size_t>(topology.ntiers()),
            "NetworkParams: link table size must equal the topology's tier "
            "count (conflicting topology/link specs)");
  for (const LinkParams& l : links)
    SWS_CHECK(l.bandwidth > 0.0, "link bandwidth must be positive");
  SWS_CHECK(local_bandwidth > 0.0, "local bandwidth must be positive");
  // Binding the topology validates the spec shape and PE capacity
  // (throws std::invalid_argument on conflict).
  Topology probe(topology, npes);
  (void)probe;
}

NetworkModel::NetworkModel(NetworkParams p, int npes)
    : p_(std::move(p)), topo_(p_.topology, npes) {}

void NetworkModel::resize(int npes) { topo_ = Topology(p_.topology, npes); }

Nanos NetworkModel::cost(OpKind kind, std::size_t bytes,
                         Tier t) const noexcept {
  if (t <= 0) {
    // Local op: NIC loopback / plain memory; payload at memcpy speed.
    return p_.local_overhead +
           static_cast<Nanos>(static_cast<double>(bytes) / p_.local_bandwidth);
  }
  const LinkParams& l = p_.link(t);
  const auto payload =
      static_cast<Nanos>(static_cast<double>(bytes) / l.bandwidth);
  switch (kind) {
    case OpKind::kPut: return l.put_latency + payload;
    case OpKind::kGet: return l.get_latency + payload;
    case OpKind::kAmoFetchAdd:
    case OpKind::kAmoCompareSwap:
    case OpKind::kAmoSwap:
    case OpKind::kAmoFetch:
    case OpKind::kAmoSet:
      return l.amo_latency;
    case OpKind::kNbiPut:
    case OpKind::kNbiAmoAdd:
    case OpKind::kNbiAmoSet:
      // Non-blocking ops only charge the initiator the issue overhead;
      // the transfer itself completes asynchronously (delivery_delay).
      return p_.nbi_issue_overhead;
    case OpKind::kCount_: break;
  }
  return 0;
}

Nanos NetworkModel::delivery_delay(std::size_t bytes, Tier t) const noexcept {
  // Self-targeted nbi ops still traverse the NIC round trip, so they pay
  // the outermost link's delay (matches the pre-tier model).
  const LinkParams& l =
      p_.link(t >= 1 ? t : static_cast<Tier>(p_.links.size()));
  return l.nbi_delay +
         static_cast<Nanos>(static_cast<double>(bytes) / l.bandwidth);
}

}  // namespace sws::net
