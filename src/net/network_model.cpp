#include "net/network_model.hpp"

#include <cmath>

namespace sws::net {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kAmoFetchAdd: return "amo_fetch_add";
    case OpKind::kAmoCompareSwap: return "amo_cswap";
    case OpKind::kAmoSwap: return "amo_swap";
    case OpKind::kAmoFetch: return "amo_fetch";
    case OpKind::kAmoSet: return "amo_set";
    case OpKind::kNbiPut: return "nbi_put";
    case OpKind::kNbiAmoAdd: return "nbi_amo_add";
    case OpKind::kNbiAmoSet: return "nbi_amo_set";
    case OpKind::kCount_: break;
  }
  return "?";
}

NetworkParams NetworkParams::scaled(double factor) const noexcept {
  NetworkParams s = *this;
  auto scale = [factor](Nanos v) {
    return static_cast<Nanos>(std::llround(static_cast<double>(v) * factor));
  };
  s.amo_latency = scale(amo_latency);
  s.get_latency = scale(get_latency);
  s.put_latency = scale(put_latency);
  s.nbi_delay = scale(nbi_delay);
  return s;
}

Locality NetworkModel::locality(int initiator, int target) const noexcept {
  if (initiator == target) return Locality::kSelf;
  if (p_.pes_per_node > 0 &&
      initiator / p_.pes_per_node == target / p_.pes_per_node)
    return Locality::kIntraNode;
  return Locality::kInterNode;
}

Nanos NetworkModel::cost(OpKind kind, std::size_t bytes,
                         Locality loc) const noexcept {
  if (loc == Locality::kSelf) {
    // Local op: NIC loopback / plain memory; payload at memcpy speed.
    return p_.local_overhead +
           static_cast<Nanos>(static_cast<double>(bytes) / p_.local_bandwidth);
  }
  const bool intra = loc == Locality::kIntraNode;
  const double bw = intra ? p_.intra_bandwidth : p_.bandwidth;
  const auto payload = static_cast<Nanos>(static_cast<double>(bytes) / bw);
  const auto lat = [&](Nanos inter) {
    return intra ? static_cast<Nanos>(
                       std::llround(static_cast<double>(inter) * p_.intra_scale))
                 : inter;
  };
  switch (kind) {
    case OpKind::kPut: return lat(p_.put_latency) + payload;
    case OpKind::kGet: return lat(p_.get_latency) + payload;
    case OpKind::kAmoFetchAdd:
    case OpKind::kAmoCompareSwap:
    case OpKind::kAmoSwap:
    case OpKind::kAmoFetch:
    case OpKind::kAmoSet:
      return lat(p_.amo_latency);
    case OpKind::kNbiPut:
    case OpKind::kNbiAmoAdd:
    case OpKind::kNbiAmoSet:
      // Non-blocking ops only charge the initiator the issue overhead;
      // the transfer itself completes asynchronously (delivery_delay).
      return p_.nbi_issue_overhead;
    case OpKind::kCount_: break;
  }
  return 0;
}

Nanos NetworkModel::delivery_delay(std::size_t bytes,
                                   Locality loc) const noexcept {
  const bool intra = loc == Locality::kIntraNode;
  const Nanos base =
      intra ? static_cast<Nanos>(std::llround(
                  static_cast<double>(p_.nbi_delay) * p_.intra_scale))
            : p_.nbi_delay;
  const double bw = intra ? p_.intra_bandwidth : p_.bandwidth;
  return base + static_cast<Nanos>(static_cast<double>(bytes) / bw);
}

}  // namespace sws::net
