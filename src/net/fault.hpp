// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan describes adverse network behaviour — latency spikes,
// jittered delivery, dropped-then-retransmitted or duplicated
// non-blocking ops, and per-PE "slow" windows emulating OS noise. The
// FaultInjector draws every decision from per-initiator-PE Xoshiro
// streams seeded from the plan, and all penalties are charged in the
// fabric's (virtual or real) time, so faulty runs are exactly as
// reproducible as clean ones.
//
// Fault semantics (docs/protocols.md "Fault model"):
//  * A latency spike or slow window stretches the initiator-blocking
//    charge of an op; it never reorders memory effects by itself.
//  * A "dropped" nbi op models transport-level loss with retransmission:
//    the memory effect still happens, but only after one or more
//    retransmit delays. The op stays pending the whole time, so
//    `Fabric::quiet()` and the pool's termination barrier still cover it.
//  * A duplicated nbi op delivers its memory effect twice — the second
//    copy after an extra delay. Both copies count as pending until
//    delivered. Consumers (completion spaces, SDC completion ring) must
//    be idempotent against this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/types.hpp"

namespace sws::net {

/// Bitmask helpers for selecting op kinds in a FaultPlan.
constexpr std::uint32_t op_bit(OpKind k) noexcept {
  return 1u << static_cast<int>(k);
}
constexpr std::uint32_t kAllOpsMask = (1u << kNumOpKinds) - 1;
constexpr std::uint32_t kNbiOpsMask = op_bit(OpKind::kNbiPut) |
                                      op_bit(OpKind::kNbiAmoAdd) |
                                      op_bit(OpKind::kNbiAmoSet);

/// One interval during which `pe` runs slow: every op it *initiates* with
/// issue time in [from_ns, until_ns) pays `factor` times its base cost.
struct SlowWindow {
  int pe = -1;
  Nanos from_ns = 0;
  Nanos until_ns = 0;
  double factor = 4.0;
};

/// One interval during which a group of PEs is partitioned from the rest
/// of the machine: every op *crossing* the boundary (initiator inside,
/// target outside, or vice versa) pays `charge_factor` times its base
/// blocking cost, and crossing non-blocking ops deliver
/// `delivery_extra_ns` late (transport routing around the cut). Ops
/// entirely inside or entirely outside the group are untouched — a
/// partitioned node keeps computing, it just can't reach the rest
/// cheaply. Build `pes` from Topology::group_members (see
/// partition_group_plan / partitioned_node_plan).
struct PartitionWindow {
  std::vector<int> pes;  ///< one side of the cut, ascending
  Nanos from_ns = 0;
  Nanos until_ns = 0;
  double charge_factor = 8.0;
  Nanos delivery_extra_ns = 40'000;
};

/// A crash-stop failure: PE `pe` dies permanently at the first operation
/// boundary (fabric op issue, compute slice, quiet poll) whose virtual
/// time is >= `at_ns`. A dead PE's thread unwinds via net::PeKilled, its
/// queued nbi effects are dropped, and every later op targeting it
/// returns the poison verdict (Fabric::kDeadFetchValue) instead of a
/// memory effect — crash-stop, not crash-recovery: the PE never returns.
/// Crashes are plan-driven and need no RNG stream, so a plan with only
/// crashes does not instantiate a FaultInjector.
struct CrashEvent {
  int pe = -1;
  Nanos at_ns = 0;
};

/// A complete, seeded description of what can go wrong on the fabric.
/// Default-constructed plans inject nothing and cost nothing.
struct FaultPlan {
  std::uint64_t seed = 0xFA17;  ///< base seed for the per-PE decision streams

  // --- latency spikes on blocking charges -------------------------------
  double spike_rate = 0.0;     ///< probability an op's charge spikes
  double spike_factor = 10.0;  ///< spiked charge = base * factor
  std::uint32_t spike_op_mask = kAllOpsMask;  ///< which op kinds can spike
  int spike_target = -1;       ///< restrict spikes to this target PE (-1: any)

  // --- delivery-time faults on non-blocking ops -------------------------
  double jitter = 0.0;         ///< extra delivery delay, uniform in
                               ///< [0, jitter * base_delay)
  double drop_rate = 0.0;      ///< per-transmission loss probability
  Nanos retransmit_ns = 20'000;  ///< delay added per lost transmission
  std::uint32_t max_retransmits = 16;  ///< loss bound (keeps delays finite)
  double dup_rate = 0.0;       ///< probability an nbi op delivers twice
  Nanos dup_delay_ns = 5'000;  ///< extra delay of the duplicate copy
  std::uint32_t delivery_op_mask = kNbiOpsMask;  ///< which nbi kinds fault

  // --- OS-noise windows -------------------------------------------------
  std::vector<SlowWindow> slow_windows;

  // --- topology-cut windows ---------------------------------------------
  std::vector<PartitionWindow> partitions;

  // --- crash-stop failures ----------------------------------------------
  std::vector<CrashEvent> crashes;

  bool spikes_enabled() const noexcept { return spike_rate > 0.0; }
  bool delivery_faults_enabled() const noexcept {
    return jitter > 0.0 || drop_rate > 0.0 || dup_rate > 0.0 ||
           !partitions.empty();
  }
  bool duplicates_possible() const noexcept { return dup_rate > 0.0; }
  /// Any crash-stop failures planned? Crashes bypass the injector: the
  /// fabric arms them directly (they draw no random decisions), so this is
  /// deliberately NOT part of enabled().
  bool crashes_enabled() const noexcept { return !crashes.empty(); }
  /// Anything at all to inject? The fabric only instantiates an injector
  /// (and only pays any per-op cost) when this is true.
  bool enabled() const noexcept {
    return spikes_enabled() || delivery_faults_enabled() ||
           !slow_windows.empty() || !partitions.empty();
  }
};

/// What the injector actually did, per initiating PE.
struct FaultStats {
  std::uint64_t spikes = 0;
  std::uint64_t spike_extra_ns = 0;
  std::uint64_t slow_hits = 0;
  std::uint64_t slow_extra_ns = 0;
  std::uint64_t jitter_extra_ns = 0;
  std::uint64_t drops = 0;  ///< lost transmissions (an op may lose several)
  std::uint64_t retransmit_extra_ns = 0;
  std::uint64_t dups = 0;
  std::uint64_t partition_hits = 0;  ///< ops that crossed an active cut
  std::uint64_t partition_extra_ns = 0;

  void merge(const FaultStats& o) noexcept {
    spikes += o.spikes;
    spike_extra_ns += o.spike_extra_ns;
    slow_hits += o.slow_hits;
    slow_extra_ns += o.slow_extra_ns;
    jitter_extra_ns += o.jitter_extra_ns;
    drops += o.drops;
    retransmit_extra_ns += o.retransmit_extra_ns;
    dups += o.dups;
    partition_hits += o.partition_hits;
    partition_extra_ns += o.partition_extra_ns;
  }
};

/// Draws fault decisions. One instance per Fabric; per-PE RNG streams and
/// stats keep it safe under the real-time backend's true concurrency and
/// deterministic under the virtual sequencer.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int npes);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Resize for `npes` PEs and reseed every stream (full reset).
  void reset(int npes);
  /// Reseed the decision streams so back-to-back runs reproduce; keeps
  /// accumulated stats (they are per-process, like FabricStats).
  void new_run();

  /// Extra initiator-blocking time for an op whose base charge is `base`,
  /// issued at `now`. Folds in spikes and slow windows.
  Nanos charge_penalty(int initiator, int target, OpKind kind, Nanos now,
                       Nanos base);

  struct Delivery {
    Nanos extra_delay = 0;      ///< added to the op's delivery deadline
    bool duplicate = false;     ///< enqueue a second copy of the effect
    Nanos dup_extra_delay = 0;  ///< duplicate lands this much later again
  };
  /// Delivery-time verdict for a non-blocking op with base delivery delay
  /// `base_delay`, issued at `now`. Called at issue time, on the
  /// initiating PE.
  Delivery delivery_verdict(int initiator, int target, OpKind kind, Nanos now,
                            Nanos base_delay);

  const FaultStats& stats(int pe) const;
  FaultStats total_stats() const;

 private:
  struct alignas(64) PerPe {
    Xoshiro256 rng{0};
    FaultStats stats{};
  };

  /// Is `pe` inside window `w`'s partitioned group?
  static bool in_partition(const PartitionWindow& w, int pe) noexcept;

  FaultPlan plan_;
  std::vector<PerPe> pes_;
};

class Topology;

/// Chaos presets over a topology group (docs/topology.md "Fault
/// presets"). Each returns a plan with only that fault class set; merge
/// fields by hand for combined scenarios.
///
/// Every PE of tier-`tier` group `group` runs `factor`x slow during
/// [from_ns, until_ns) — OS-noise across a whole node/rack at once.
FaultPlan slow_group_plan(const Topology& topo, Tier tier, int group,
                          Nanos from_ns, Nanos until_ns, double factor = 4.0);
/// Tier-`tier` group `group` is cut off during [from_ns, until_ns): ops
/// crossing the boundary pay charge_factor x and nbi deliveries crossing
/// it land delivery_extra_ns late.
FaultPlan partition_group_plan(const Topology& topo, Tier tier, int group,
                               Nanos from_ns, Nanos until_ns,
                               double charge_factor = 8.0,
                               Nanos delivery_extra_ns = 40'000);
/// Named shapes the chaos suite exercises: a slow outermost-tier group
/// (rack) and a partitioned innermost-tier group (node).
FaultPlan slow_rack_plan(const Topology& topo, int rack, Nanos from_ns,
                         Nanos until_ns, double factor = 4.0);
FaultPlan partitioned_node_plan(const Topology& topo, int node, Nanos from_ns,
                                Nanos until_ns);

/// Crash-stop presets (docs/resilience.md "Writing a crash plan").
/// A single PE dies at virtual time `at_ns`.
FaultPlan crash_plan(int pe, Nanos at_ns);
/// Every PE of tier-`tier` group `group` dies at `at_ns` — a whole
/// node/rack lost at once.
FaultPlan crash_group_plan(const Topology& topo, Tier tier, int group,
                           Nanos at_ns);
/// Named shapes: a dead node (innermost tier) and a dead rack (largest
/// grouping below the machine).
FaultPlan node_failure_plan(const Topology& topo, int node, Nanos at_ns);
FaultPlan rack_failure_plan(const Topology& topo, int rack, Nanos at_ns);

}  // namespace sws::net
