#include "net/time_model.hpp"

#include <thread>

#include "common/assert.hpp"

namespace sws::net {

// ---------------------------------------------------------------- virtual

VirtualTimeModel::VirtualTimeModel(int npes) { reset(npes); }

VirtualTimeModel::~VirtualTimeModel() = default;

void VirtualTimeModel::reset(int npes) {
  SWS_CHECK(npes >= 0, "npes must be non-negative");
  std::lock_guard<std::mutex> lk(mu_);
  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(npes));
  for (int i = 0; i < npes; ++i) slots_.push_back(std::make_unique<PeSlot>());
  // The baton starts with PE 0: all clocks are 0 and ties break by id.
  active_ = npes > 0 ? 0 : -1;
}

void VirtualTimeModel::set_delivery_hook(DeliveryHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void VirtualTimeModel::set_ready_arbiter(ReadyArbiter arb) {
  std::lock_guard<std::mutex> lk(mu_);
  arbiter_ = std::move(arb);
}

int VirtualTimeModel::pick_next_locked(int caller) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    const auto& s = *slots_[static_cast<std::size_t>(i)];
    if (s.finished) continue;
    if (best < 0 || s.vtime < slots_[static_cast<std::size_t>(best)]->vtime)
      best = i;
  }
  if (best < 0 || !arbiter_) return best;

  // Collect every PE tied at the minimum: each is a legal next event, and
  // which one runs decides how the in-flight memory effects interleave.
  const Nanos floor = slots_[static_cast<std::size_t>(best)]->vtime;
  ready_scratch_.clear();
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    const auto& s = *slots_[static_cast<std::size_t>(i)];
    if (!s.finished && s.vtime == floor) ready_scratch_.push_back(i);
  }
  if (ready_scratch_.size() == 1) return best;
  const int chosen = arbiter_(caller, ready_scratch_, floor);
  SWS_ASSERT_MSG(chosen >= 0 && chosen < static_cast<int>(slots_.size()) &&
                     !slots_[static_cast<std::size_t>(chosen)]->finished &&
                     slots_[static_cast<std::size_t>(chosen)]->vtime == floor,
                 "arbiter returned a PE outside the ready set");
  return chosen;
}

void VirtualTimeModel::activate_locked(int next) {
  active_ = next;
  if (next < 0) return;
  // Deliver everything that is now in the past before the PE resumes, so
  // it observes a consistent "nothing from the future" memory state.
  if (hook_) hook_(slots_[static_cast<std::size_t>(next)]->vtime);
  slots_[static_cast<std::size_t>(next)]->cv.notify_one();
}

void VirtualTimeModel::pe_begin(int pe) {
  std::unique_lock<std::mutex> lk(mu_);
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  auto& slot = *slots_[static_cast<std::size_t>(pe)];
  slot.cv.wait(lk, [&] { return active_ == pe; });
}

void VirtualTimeModel::pe_end(int pe) {
  std::unique_lock<std::mutex> lk(mu_);
  SWS_ASSERT(active_ == pe);
  slots_[static_cast<std::size_t>(pe)]->finished = true;
  activate_locked(pick_next_locked(pe));
}

void VirtualTimeModel::advance(int pe, Nanos dt) {
  std::unique_lock<std::mutex> lk(mu_);
  SWS_ASSERT_MSG(active_ == pe, "advance() by a PE not holding the baton");
  auto& slot = *slots_[static_cast<std::size_t>(pe)];
  slot.vtime += dt;
  const int next = pick_next_locked(pe);
  SWS_ASSERT(next >= 0);  // we are unfinished, so somebody is runnable
  if (next == pe) {
    // Fast path: still the global minimum — keep running, but let the
    // fabric deliver anything that our own advance made due.
    if (hook_) hook_(slot.vtime);
    return;
  }
  activate_locked(next);
  slot.cv.wait(lk, [&] { return active_ == pe; });
}

Nanos VirtualTimeModel::now(int pe) const {
  std::lock_guard<std::mutex> lk(mu_);
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  return slots_[static_cast<std::size_t>(pe)]->vtime;
}

// ------------------------------------------------------------------ real

RealTimeModel::RealTimeModel(int npes, Nanos spin_threshold)
    : epoch_(std::chrono::steady_clock::now()),
      spin_threshold_(spin_threshold),
      npes_(npes) {}

void RealTimeModel::reset(int npes) {
  npes_ = npes;
  epoch_ = std::chrono::steady_clock::now();
}

void RealTimeModel::advance(int pe, Nanos dt) {
  (void)pe;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(dt);
  if (dt >= spin_threshold_) {
    std::this_thread::sleep_until(deadline);
  } else {
    while (std::chrono::steady_clock::now() < deadline) {
      // Busy-wait; yield so oversubscribed hosts still make progress.
      std::this_thread::yield();
    }
  }
}

Nanos RealTimeModel::now(int pe) const {
  (void)pe;
  return static_cast<Nanos>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - epoch_)
                                .count());
}

void RealTimeModel::set_delivery_hook(DeliveryHook hook) {
  // Real mode applies non-blocking ops immediately; nothing to deliver.
  (void)hook;
}

}  // namespace sws::net
