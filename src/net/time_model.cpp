#include "net/time_model.hpp"

#include <thread>

#include "common/assert.hpp"

namespace sws::net {

// ---------------------------------------------------------------- virtual

VirtualTimeModel::VirtualTimeModel(int npes) { reset(npes); }

VirtualTimeModel::~VirtualTimeModel() = default;

void VirtualTimeModel::reset(int npes) {
  SWS_CHECK(npes >= 0, "npes must be non-negative");
  std::lock_guard<std::mutex> lk(mu_);
  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(npes));
  for (int i = 0; i < npes; ++i) slots_.push_back(std::make_unique<PeSlot>());
  heap_.rebuild(npes);
  // The baton starts with PE 0: all clocks are 0 and ties break by id.
  // Horizons start at 0, so the first advance of every PE enters the
  // sequencer and computes a real horizon.
  active_.store(npes > 0 ? 0 : -1, std::memory_order_relaxed);
  next_sample_ = sample_interval_;
}

void VirtualTimeModel::set_delivery_hook(DeliveryHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void VirtualTimeModel::set_sample_hook(SampleHook hook, Nanos interval_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  sample_hook_ = std::move(hook);
  sample_interval_ = sample_hook_ ? interval_ns : 0;
  next_sample_ = sample_interval_;
}

void VirtualTimeModel::set_ready_arbiter(ReadyArbiter arb) {
  std::lock_guard<std::mutex> lk(mu_);
  arbiter_ = std::move(arb);
}

void VirtualTimeModel::set_reference_mode(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  reference_ = on;
}

int VirtualTimeModel::pick_next_locked(int caller) {
  int best = -1;
  if (reference_) {
    // Legacy strategy: O(N) scan, kept as the A/B measurement baseline.
    for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
      const auto& s = *slots_[static_cast<std::size_t>(i)];
      if (s.finished) continue;
      if (best < 0 ||
          s.vtime.load(std::memory_order_relaxed) <
              slots_[static_cast<std::size_t>(best)]->vtime.load(
                  std::memory_order_relaxed))
        best = i;
    }
  } else {
    // The heap's (vtime, pe) order reproduces the scan's lowest-id
    // tie-break exactly. Callers refresh the active PE's key before
    // picking, so the top is authoritative.
    best = heap_.top();
  }
  if (best < 0 || !arbiter_) return best;

  // Collect every PE tied at the minimum: each is a legal next event, and
  // which one runs decides how the in-flight memory effects interleave.
  // Only worth O(N) when an arbiter is actually installed.
  const Nanos floor =
      slots_[static_cast<std::size_t>(best)]->vtime.load(
          std::memory_order_relaxed);
  ready_scratch_.clear();
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    const auto& s = *slots_[static_cast<std::size_t>(i)];
    if (!s.finished && s.vtime.load(std::memory_order_relaxed) == floor)
      ready_scratch_.push_back(i);
  }
  if (ready_scratch_.size() == 1) return best;
  const int chosen = arbiter_(caller, ready_scratch_, floor);
  SWS_ASSERT_MSG(chosen >= 0 && chosen < static_cast<int>(slots_.size()) &&
                     !slots_[static_cast<std::size_t>(chosen)]->finished &&
                     slots_[static_cast<std::size_t>(chosen)]->vtime.load(
                         std::memory_order_relaxed) == floor,
                 "arbiter returned a PE outside the ready set");
  return chosen;
}

Nanos VirtualTimeModel::horizon_locked(int pe) {
  // Deliver everything that is now in the past before the PE resumes, so
  // it observes a consistent "nothing from the future" memory state; the
  // hook reports the earliest deadline still pending so batching can
  // never skip over a delivery.
  Nanos next_deadline = kNoPendingDeadline;
  const Nanos now =
      slots_[static_cast<std::size_t>(pe)]->vtime.load(
          std::memory_order_relaxed);
  if (hook_) next_deadline = hook_(now);
  // Windowed sampling: fire once per boundary the floor has crossed, in
  // order. Observation-only — the hook reads state, never schedules
  // events — so the schedule is byte-identical with sampling off.
  if (sample_interval_ > 0) {
    while (now >= next_sample_) {
      sample_hook_(next_sample_);
      next_sample_ += sample_interval_;
    }
  }
  // Batching off: reference mode measures the legacy per-event lock, and
  // an installed arbiter must see every advance as a potential tie.
  if (reference_ || arbiter_) return 0;
  Nanos h = heap_.second_vtime();
  if (next_deadline < h) h = next_deadline;
  // Cap batches at the next sampling boundary so samples land exactly
  // when the floor crosses it (a smaller horizon never changes the
  // schedule — reference mode pins it to 0 and stays byte-identical).
  if (sample_interval_ > 0 && next_sample_ < h) h = next_sample_;
  return h;
}

void VirtualTimeModel::activate_locked(int next) {
  active_.store(next, std::memory_order_relaxed);
  if (next < 0) return;
  PeSlot& slot = *slots_[static_cast<std::size_t>(next)];
  slot.horizon = horizon_locked(next);
  slot.cv.notify_one();
}

void VirtualTimeModel::pe_begin(int pe) {
  std::unique_lock<std::mutex> lk(mu_);
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  auto& slot = *slots_[static_cast<std::size_t>(pe)];
  slot.cv.wait(
      lk, [&] { return active_.load(std::memory_order_relaxed) == pe; });
}

void VirtualTimeModel::pe_end(int pe) {
  std::unique_lock<std::mutex> lk(mu_);
  SWS_ASSERT(active_.load(std::memory_order_relaxed) == pe);
  slots_[static_cast<std::size_t>(pe)]->finished = true;
  if (!reference_) heap_.remove(pe);
  activate_locked(pick_next_locked(pe));
}

void VirtualTimeModel::advance(int pe, Nanos dt) {
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  SWS_ASSERT_MSG(active_.load(std::memory_order_relaxed) == pe,
                 "advance() by a PE not holding the baton");
  const Nanos nv = slot.vtime.load(std::memory_order_relaxed) + dt;
  if (nv < slot.horizon) {
    // Run-to-horizon fast path: still strictly the global minimum and
    // strictly before the next delivery deadline — nothing to pick,
    // nothing to deliver, nobody to wake. Publish the clock and return.
    slot.vtime.store(nv, std::memory_order_release);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  slot.vtime.store(nv, std::memory_order_release);
  if (!reference_) heap_.update(pe, nv);  // increase-key
  const int next = pick_next_locked(pe);
  SWS_ASSERT(next >= 0);  // we are unfinished, so somebody is runnable
  if (next == pe) {
    // Still the minimum: deliver anything our own advance made due and
    // batch up to the refreshed horizon.
    slot.horizon = horizon_locked(pe);
    return;
  }
  activate_locked(next);
  slot.cv.wait(
      lk, [&] { return active_.load(std::memory_order_relaxed) == pe; });
}

Nanos VirtualTimeModel::now(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  return slots_[static_cast<std::size_t>(pe)]->vtime.load(
      std::memory_order_acquire);
}

void VirtualTimeModel::clamp_horizon(int pe, Nanos deadline) {
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(slots_.size()));
  SWS_ASSERT_MSG(active_.load(std::memory_order_relaxed) == pe,
                 "clamp_horizon() by a PE not holding the baton");
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  if (deadline < slot.horizon) slot.horizon = deadline;
}

// ------------------------------------------------------------------ real

RealTimeModel::RealTimeModel(int npes, Nanos spin_threshold)
    : epoch_(std::chrono::steady_clock::now()),
      spin_threshold_(spin_threshold),
      npes_(npes) {}

void RealTimeModel::reset(int npes) {
  npes_ = npes;
  epoch_ = std::chrono::steady_clock::now();
}

void RealTimeModel::advance(int pe, Nanos dt) {
  (void)pe;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(dt);
  if (dt >= spin_threshold_) {
    std::this_thread::sleep_until(deadline);
  } else {
    while (std::chrono::steady_clock::now() < deadline) {
      // Busy-wait; yield so oversubscribed hosts still make progress.
      std::this_thread::yield();
    }
  }
}

Nanos RealTimeModel::now(int pe) const {
  (void)pe;
  return static_cast<Nanos>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - epoch_)
                                .count());
}

void RealTimeModel::set_delivery_hook(DeliveryHook hook) {
  // Real mode applies non-blocking ops immediately; nothing to deliver.
  (void)hook;
}

}  // namespace sws::net
