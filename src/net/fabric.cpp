#include "net/fabric.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace sws::net {

namespace {

/// Brackets a globally ordered action under the parallel engine:
/// global_begin parks the initiator until it is the unique (vtime, pe)
/// frontier, so the action's charge and effect land at their exact serial
/// position; global_end lets it continue privately. Inactive (zero-cost)
/// under the serial engines and for self-targeted blocking ops, which
/// touch only initiator-local state.
class GlobalGate {
 public:
  /// `target` is the op's conflict footprint (the PE whose state the op's
  /// effect touches, or a TimeModel sentinel) — see Fabric::gate_footprint.
  GlobalGate(TimeModel& time, int pe, bool active, int target)
      : time_(time), pe_(pe), active_(active) {
    if (active_) time_.global_begin(pe_, target);
  }
  ~GlobalGate() {
    if (active_) time_.global_end(pe_);
  }
  GlobalGate(const GlobalGate&) = delete;
  GlobalGate& operator=(const GlobalGate&) = delete;

 private:
  TimeModel& time_;
  int pe_;
  bool active_;
};

}  // namespace

Fabric::Fabric(TimeModel& time, NetworkModel model, int npes)
    : concurrent_(time.concurrent_windows()), time_(time), model_(model) {
  if (model_.params().faults.enabled())
    faults_ = std::make_unique<FaultInjector>(model_.params().faults, npes);
  crashes_armed_ = model_.params().faults.crashes_enabled();
  reset(npes);
  if (time_.is_virtual()) {
    time_.set_delivery_hook([this](Nanos now) { return deliver_until(now); });
  } else {
    // Real-time backend: a progress thread plays the NIC, applying nbi
    // effects once their wall-clock deadline passes.
    delivery_thread_ = std::thread([this] { delivery_loop(); });
  }
}

Fabric::~Fabric() {
  if (delivery_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(pend_mu_);
      stopping_ = true;
    }
    pend_cv_.notify_all();
    delivery_thread_.join();
  }
}

std::uint32_t Fabric::grab_slab_locked(const void* src, std::size_t n,
                                       int refs) {
  ++pool_stats_.slab_grabs;
  std::uint32_t idx;
  if (slab_free_ != Slab::kNone) {
    idx = slab_free_;
    slab_free_ = slabs_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slabs_.size());
    slabs_.emplace_back();
    ++pool_stats_.slab_allocs;
  }
  Slab& s = slabs_[idx];
  s.refs = refs;
  s.next_free = Slab::kNone;
  const auto* p = static_cast<const std::byte*>(src);
  s.data.assign(p, p + n);  // reuses capacity on a recycled slab
  return idx;
}

void Fabric::apply_effect_locked(const PendingEffect& e) {
  // Atomics/memcpy on arenas: safe off-thread (real backend's progress
  // thread) as well as under the sequencer hook.
  switch (e.kind) {
    case PendingEffect::Kind::kAmoAdd:
      std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(e.dst))
          .fetch_add(e.value, std::memory_order_seq_cst);
      break;
    case PendingEffect::Kind::kAmoSet:
      std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(e.dst))
          .store(e.value, std::memory_order_seq_cst);
      break;
    case PendingEffect::Kind::kPut:
      if (!e.in_slab) {
        std::memcpy(e.dst, e.inline_buf.data(), e.len);
      } else {
        Slab& s = slabs_[e.slab];
        std::memcpy(e.dst, s.data.data(), e.len);
        if (--s.refs == 0) {
          s.next_free = slab_free_;
          slab_free_ = e.slab;
        }
      }
      break;
    case PendingEffect::Kind::kNone:
      break;
  }
}

void Fabric::apply_top_locked() {
  const PendingOp& top = pending_.top();
  const PendingEffect effect = top.effect;
  const int initiator = top.initiator;
  const int target = top.target;
  pending_.pop();
  apply_effect_locked(effect);
  pending_per_pe_[static_cast<std::size_t>(initiator)].fetch_sub(
      1, std::memory_order_relaxed);
  pending_per_target_[static_cast<std::size_t>(target)].fetch_sub(
      1, std::memory_order_relaxed);
}

void Fabric::delivery_loop() {
  std::unique_lock<std::mutex> lk(pend_mu_);
  while (!stopping_) {
    if (pending_.empty()) {
      pend_cv_.wait(lk);
      continue;
    }
    const Nanos due = pending_.top().deadline;
    const Nanos now = time_.now(0);  // real backend: one global clock
    if (now < due) {
      pend_cv_.wait_for(lk, std::chrono::nanoseconds(due - now));
      continue;
    }
    apply_top_locked();
    pend_cv_.notify_all();  // wake quiet() waiters
  }
}

void Fabric::reset(int npes) {
  SWS_CHECK(npes >= 0, "npes must be non-negative");
  {
    std::lock_guard<std::mutex> lk(pend_mu_);
    while (!pending_.empty()) pending_.pop();
    next_seq_ = 0;
    // Dropped ops never deliver, so rebuild the slab free list from
    // scratch; buffers (and their capacity) are kept for reuse.
    slab_free_ = Slab::kNone;
    for (std::uint32_t i = 0; i < slabs_.size(); ++i) {
      slabs_[i].refs = 0;
      slabs_[i].next_free = slab_free_;
      slab_free_ = i;
    }
  }
  model_.resize(npes);
  arenas_.assign(static_cast<std::size_t>(npes), Arena{});
  busy_until_.assign(static_cast<std::size_t>(npes), Nanos{0});
  stats_.assign(static_cast<std::size_t>(npes), PaddedStats{});
  labels_.assign(static_cast<std::size_t>(npes), PaddedLabel{});
  pending_per_pe_ = std::vector<std::atomic<int>>(static_cast<std::size_t>(npes));
  for (auto& p : pending_per_pe_) p.store(0, std::memory_order_relaxed);
  pending_per_target_ =
      std::vector<std::atomic<int>>(static_cast<std::size_t>(npes));
  for (auto& p : pending_per_target_) p.store(0, std::memory_order_relaxed);
  if (faults_) faults_->reset(npes);
  crash_at_.assign(static_cast<std::size_t>(npes), kNoPendingDeadline);
  dead_ = std::vector<std::atomic<bool>>(static_cast<std::size_t>(npes));
  for (auto& d : dead_) d.store(false, std::memory_order_relaxed);
  ndead_.store(0, std::memory_order_relaxed);
  if (crashes_armed_) arm_crashes();
}

void Fabric::arm_crashes() {
  for (const CrashEvent& e : model_.params().faults.crashes) {
    SWS_CHECK(e.pe >= 0 && e.pe < npes(), "crash event PE out of range");
    Nanos& at = crash_at_[static_cast<std::size_t>(e.pe)];
    at = std::min(at, e.at_ns);
  }
}

void Fabric::new_run() {
  {
    std::lock_guard<std::mutex> lk(pend_mu_);
    // Apply any leftovers so no memory effect is silently dropped. (A run
    // that drives raw queues without a final quiet may legitimately end
    // with in-flight completions; a TaskPool run may not — its teardown
    // asserts pending(pe)==0 after quiet-at-barrier.)
    while (!pending_.empty()) apply_top_locked();
    // After the drain, the per-PE counters must agree with the (now
    // empty) queue — anything else means an op leaked across runs.
    for (const auto& p : pending_per_pe_)
      SWS_ASSERT_MSG(p.load(std::memory_order_relaxed) == 0,
                     "pending nbi ops leaked across runs (initiator count)");
    for (const auto& p : pending_per_target_)
      SWS_ASSERT_MSG(p.load(std::memory_order_relaxed) == 0,
                     "pending nbi ops leaked across runs (target count)");
  }
  std::fill(busy_until_.begin(), busy_until_.end(), Nanos{0});
  std::fill(labels_.begin(), labels_.end(), PaddedLabel{});
  // Reseed the fault streams so run N+1 replays run N's decisions.
  if (faults_) faults_->new_run();
  if (crashes_armed_) {
    // Clocks restart at 0, so the planned crashes re-fire: every PE is
    // alive again and the same CrashEvents replay — run N+1 reproduces
    // run N's deaths exactly.
    for (auto& d : dead_) d.store(false, std::memory_order_relaxed);
    ndead_.store(0, std::memory_order_relaxed);
    std::fill(crash_at_.begin(), crash_at_.end(), kNoPendingDeadline);
    arm_crashes();
  }
}

void Fabric::maybe_crash(int pe) {
  const std::size_t i = static_cast<std::size_t>(pe);
  if (crash_at_[i] == kNoPendingDeadline) return;
  const Nanos now = time_.now(pe);
  if (now < crash_at_[i]) return;
  // Fire exactly once, at the first op boundary past the planned instant.
  crash_at_[i] = kNoPendingDeadline;
  mark_dead(pe);
  throw PeKilled{pe, now};
}

void Fabric::mark_dead(int pe) {
  SWS_ASSERT(pe >= 0 && pe < npes());
  const std::size_t i = static_cast<std::size_t>(pe);
  if (dead_[i].exchange(true, std::memory_order_seq_cst)) return;
  ndead_.fetch_add(1, std::memory_order_relaxed);
  crash_at_[i] = kNoPendingDeadline;

  // Drop the dead PE's in-flight traffic: effects it issued die on the
  // wire, and effects targeting it have no NIC to land on. Rebuilding the
  // queue here (rather than filtering at delivery) keeps pending()/
  // pending_to() exact, which quiet() loops and the new_run() leak asserts
  // rely on.
  std::lock_guard<std::mutex> lk(pend_mu_);
  std::priority_queue<PendingOp, std::vector<PendingOp>, std::greater<>> keep;
  while (!pending_.empty()) {
    PendingOp op = pending_.top();
    pending_.pop();
    if (op.initiator != pe && op.target != pe) {
      keep.push(std::move(op));
      continue;
    }
    if (op.effect.kind == PendingEffect::Kind::kPut && op.effect.in_slab) {
      Slab& s = slabs_[op.effect.slab];
      if (--s.refs == 0) {
        s.next_free = slab_free_;
        slab_free_ = op.effect.slab;
      }
    }
    pending_per_pe_[static_cast<std::size_t>(op.initiator)].fetch_sub(
        1, std::memory_order_relaxed);
    pending_per_target_[static_cast<std::size_t>(op.target)].fetch_sub(
        1, std::memory_order_relaxed);
  }
  pending_.swap(keep);
}

void Fabric::register_arena(int pe, std::byte* base, std::size_t size) {
  SWS_CHECK(pe >= 0 && pe < npes(), "arena PE out of range");
  arenas_[static_cast<std::size_t>(pe)] = Arena{base, size};
}

std::byte* Fabric::translate(int target, std::uint64_t offset,
                             std::size_t n) const {
  SWS_ASSERT(target >= 0 && target < npes());
  const Arena& a = arenas_[static_cast<std::size_t>(target)];
  SWS_ASSERT_MSG(a.base != nullptr, "target arena not registered");
  SWS_ASSERT_MSG(offset + n <= a.size, "one-sided access out of arena bounds");
  return a.base + offset;
}

std::uint64_t* Fabric::translate_u64(int target, std::uint64_t offset) const {
  SWS_ASSERT_MSG(offset % 8 == 0, "AMO target must be 8-byte aligned");
  return reinterpret_cast<std::uint64_t*>(translate(target, offset, 8));
}

void Fabric::note_op(int initiator, int target, OpKind kind,
                     std::uint64_t offset) {
  PaddedLabel& pl = labels_[static_cast<std::size_t>(initiator)];
  pl.l = OpLabel{kind, target, offset, pl.span};
}

const OpLabel& Fabric::last_op(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < npes());
  return labels_[static_cast<std::size_t>(pe)].l;
}

void Fabric::set_span(int pe, std::uint64_t span) noexcept {
  labels_[static_cast<std::size_t>(pe)].span = span;
}

std::uint64_t Fabric::current_span(int pe) const noexcept {
  return labels_[static_cast<std::size_t>(pe)].span;
}

void Fabric::charge(int initiator, int target, OpKind kind,
                    std::size_t bytes) {
  SWS_ASSERT(initiator >= 0 && initiator < npes());
  // Crash-stop: the initiator dies *before* this op's effect if its
  // planned time has passed — the op is never issued.
  if (crashes_armed_) maybe_crash(initiator);
  const Tier tier = model_.tier(initiator, target);
  const bool remote = tier > 0;
  Nanos c = model_.cost(kind, bytes, tier);
  FabricStats& s = stats_[static_cast<std::size_t>(initiator)].s;
  ++s.ops[static_cast<int>(kind)];
  (remote ? s.remote_ops : s.local_ops) += 1;
  if (remote) ++s.tier_ops[static_cast<std::size_t>(tier - 1)];

  // Target-NIC occupancy: concurrent remote ops against one PE queue
  // behind each other. Only meaningful (and only safe without locking —
  // the baton serializes us) under the virtual-time backend.
  const Nanos occ = remote ? model_.params().link(tier).target_occupancy : 0;
  if (remote && occ > 0 && time_.is_virtual()) {
    const Nanos now = time_.now(initiator);
    Nanos& busy = busy_until_[static_cast<std::size_t>(target)];
    const Nanos start = std::max(now, busy);
    busy = start + occ;
    const Nanos wait = start - now;
    s.occupancy_wait_ns += wait;
    c += wait;
  }

  if (faults_)
    c += faults_->charge_penalty(initiator, target, kind,
                                 time_.now(initiator), c);

  s.blocking_ns += c;
  // Span-scoped op observation: report the charge window to the tracer
  // before the clock moves. Reads only — a recorded op must not perturb
  // the schedule, which is what keeps determinism A/B byte-identical
  // with tracing enabled.
  if (observer_) {
    const PaddedLabel& pl = labels_[static_cast<std::size_t>(initiator)];
    if (pl.span != 0) {
      OpRecord r;
      r.initiator = initiator;
      r.target = target;
      r.kind = kind;
      r.offset = pl.l.offset;
      r.span = pl.span;
      r.bytes = bytes;
      r.begin = time_.now(initiator);
      r.dur = c;
      observer_(r);
    }
  }
  time_.advance(initiator, c);
}

// ------------------------------------------------------------- blocking

void Fabric::put(int initiator, int target, std::uint64_t offset,
                 const void* src, std::size_t n) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kPut, offset);
  charge(initiator, target, OpKind::kPut, n);
  if (effect_suppressed(initiator, target)) return;
  std::memcpy(translate(target, offset, n), src, n);
  stats_[static_cast<std::size_t>(initiator)].s.bytes_put += n;
}

void Fabric::get(int initiator, int target, std::uint64_t offset, void* dst,
                 std::size_t n) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kGet, offset);
  charge(initiator, target, OpKind::kGet, n);
  if (effect_suppressed(initiator, target)) {
    std::memset(dst, 0xFF, n);  // poison: all-ones, like kDeadFetchValue
    return;
  }
  std::memcpy(dst, translate(target, offset, n), n);
  stats_[static_cast<std::size_t>(initiator)].s.bytes_got += n;
}

void Fabric::put_words(int initiator, int target, std::uint64_t offset,
                       const std::uint64_t* src, std::size_t nwords) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kPut, offset);
  charge(initiator, target, OpKind::kPut, nwords * 8);
  if (effect_suppressed(initiator, target)) return;
  SWS_ASSERT_MSG(offset % 8 == 0, "word put must be 8-byte aligned");
  auto* dst =
      reinterpret_cast<std::uint64_t*>(translate(target, offset, nwords * 8));
  for (std::size_t i = 0; i < nwords; ++i)
    std::atomic_ref<std::uint64_t>(dst[i]).store(src[i],
                                                 std::memory_order_seq_cst);
  stats_[static_cast<std::size_t>(initiator)].s.bytes_put += nwords * 8;
}

void Fabric::get_words(int initiator, int target, std::uint64_t offset,
                       std::uint64_t* dst, std::size_t nwords) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kGet, offset);
  charge(initiator, target, OpKind::kGet, nwords * 8);
  if (effect_suppressed(initiator, target)) {
    for (std::size_t i = 0; i < nwords; ++i) dst[i] = kDeadFetchValue;
    return;
  }
  SWS_ASSERT_MSG(offset % 8 == 0, "word get must be 8-byte aligned");
  const auto* src = reinterpret_cast<const std::uint64_t*>(
      translate(target, offset, nwords * 8));
  for (std::size_t i = 0; i < nwords; ++i)
    dst[i] = std::atomic_ref<const std::uint64_t>(src[i]).load(
        std::memory_order_seq_cst);
  stats_[static_cast<std::size_t>(initiator)].s.bytes_got += nwords * 8;
}

std::uint64_t Fabric::amo_fetch_add(int initiator, int target,
                                    std::uint64_t offset,
                                    std::uint64_t value) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kAmoFetchAdd, offset);
  charge(initiator, target, OpKind::kAmoFetchAdd, 8);
  if (effect_suppressed(initiator, target)) return kDeadFetchValue;
  return std::atomic_ref<std::uint64_t>(*translate_u64(target, offset))
      .fetch_add(value, std::memory_order_seq_cst);
}

std::uint64_t Fabric::amo_compare_swap(int initiator, int target,
                                       std::uint64_t offset,
                                       std::uint64_t expected,
                                       std::uint64_t desired) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kAmoCompareSwap, offset);
  charge(initiator, target, OpKind::kAmoCompareSwap, 8);
  if (effect_suppressed(initiator, target)) return kDeadFetchValue;
  std::uint64_t e = expected;
  std::atomic_ref<std::uint64_t>(*translate_u64(target, offset))
      .compare_exchange_strong(e, desired, std::memory_order_seq_cst);
  return e;  // OpenSHMEM cswap returns the prior value
}

std::uint64_t Fabric::amo_swap(int initiator, int target, std::uint64_t offset,
                               std::uint64_t value) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kAmoSwap, offset);
  charge(initiator, target, OpKind::kAmoSwap, 8);
  if (effect_suppressed(initiator, target)) return kDeadFetchValue;
  return std::atomic_ref<std::uint64_t>(*translate_u64(target, offset))
      .exchange(value, std::memory_order_seq_cst);
}

std::uint64_t Fabric::amo_fetch(int initiator, int target,
                                std::uint64_t offset) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kAmoFetch, offset);
  charge(initiator, target, OpKind::kAmoFetch, 8);
  if (effect_suppressed(initiator, target)) return kDeadFetchValue;
  return std::atomic_ref<std::uint64_t>(*translate_u64(target, offset))
      .load(std::memory_order_seq_cst);
}

void Fabric::amo_set(int initiator, int target, std::uint64_t offset,
                     std::uint64_t value) {
  GlobalGate gate(time_, initiator, concurrent_ && target != initiator,
                  gate_footprint(target));
  note_op(initiator, target, OpKind::kAmoSet, offset);
  charge(initiator, target, OpKind::kAmoSet, 8);
  if (effect_suppressed(initiator, target)) return;
  std::atomic_ref<std::uint64_t>(*translate_u64(target, offset))
      .store(value, std::memory_order_seq_cst);
}

// --------------------------------------------------------- non-blocking

void Fabric::enqueue_nbi(int initiator, int target, OpKind kind,
                         std::size_t bytes, PendingEffect effect,
                         const void* slab_src) {
  const Nanos base_delay =
      model_.delivery_delay(bytes, model_.tier(initiator, target));
  Nanos deadline = time_.now(initiator) + base_delay;
  bool duplicate = false;
  Nanos dup_deadline = 0;
  if (faults_) {
    const FaultInjector::Delivery v = faults_->delivery_verdict(
        initiator, target, kind, time_.now(initiator), base_delay);
    deadline += v.extra_delay;  // jitter + retransmits after loss
    if (v.duplicate) {
      duplicate = true;
      dup_deadline = deadline + v.dup_extra_delay;
    }
  }
  {
    std::lock_guard<std::mutex> lk(pend_mu_);
    const int copies = duplicate ? 2 : 1;
    if (slab_src != nullptr) {
      effect.in_slab = true;
      effect.slab = grab_slab_locked(slab_src, effect.len, copies);
    } else {
      ++pool_stats_.inline_effects;
    }
    pending_per_pe_[static_cast<std::size_t>(initiator)].fetch_add(
        copies, std::memory_order_relaxed);
    pending_per_target_[static_cast<std::size_t>(target)].fetch_add(
        copies, std::memory_order_relaxed);
    pending_.push(PendingOp{deadline, next_seq_++, initiator, target, effect});
    if (duplicate) {
      // Both copies enter pending_ atomically with the original (sharing
      // one slab via refcount), so pending_to(target)==0 proves no stray
      // duplicate is in flight.
      pending_.push(
          PendingOp{dup_deadline, next_seq_++, initiator, target, effect});
    }
  }
  if (!time_.is_virtual()) pend_cv_.notify_all();
  // Only the baton holder issues ops under the virtual backend, so this
  // needs no lock: shrink our batching horizon so the sequencer cannot
  // run past the new deadline without delivering. Fault-extended (and
  // duplicate) deadlines are covered: the original's deadline is the
  // earliest of the copies.
  time_.clamp_horizon(initiator, deadline);
}

void Fabric::nbi_put(int initiator, int target, std::uint64_t offset,
                     const void* src, std::size_t n) {
  // nbi enqueues are globally ordered even against self: they assign the
  // shared delivery sequence number and move cross-initiator pending
  // counters, so the gate covers target == initiator too.
  GlobalGate gate(time_, initiator, concurrent_,
                  gate_footprint(TimeModel::kNoConflictTarget));
  note_op(initiator, target, OpKind::kNbiPut, offset);
  charge(initiator, target, OpKind::kNbiPut, n);
  if (effect_suppressed(initiator, target)) return;
  stats_[static_cast<std::size_t>(initiator)].s.bytes_put += n;
  PendingEffect e;
  e.kind = PendingEffect::Kind::kPut;
  e.dst = translate(target, offset, n);
  e.len = static_cast<std::uint32_t>(n);
  if (n <= PendingEffect::kInlineBytes) {
    std::memcpy(e.inline_buf.data(), src, n);
    enqueue_nbi(initiator, target, OpKind::kNbiPut, n, e, nullptr);
  } else {
    // `src` is copied into a pooled slab inside enqueue_nbi, before this
    // call returns, so the caller's buffer lifetime contract is unchanged.
    enqueue_nbi(initiator, target, OpKind::kNbiPut, n, e, src);
  }
}

void Fabric::nbi_amo_add(int initiator, int target, std::uint64_t offset,
                         std::uint64_t value) {
  GlobalGate gate(time_, initiator, concurrent_,
                  gate_footprint(TimeModel::kNoConflictTarget));
  note_op(initiator, target, OpKind::kNbiAmoAdd, offset);
  charge(initiator, target, OpKind::kNbiAmoAdd, 8);
  if (effect_suppressed(initiator, target)) return;
  PendingEffect e;
  e.kind = PendingEffect::Kind::kAmoAdd;
  e.dst = translate_u64(target, offset);
  e.value = value;
  enqueue_nbi(initiator, target, OpKind::kNbiAmoAdd, 8, e, nullptr);
}

void Fabric::nbi_amo_set(int initiator, int target, std::uint64_t offset,
                         std::uint64_t value) {
  GlobalGate gate(time_, initiator, concurrent_,
                  gate_footprint(TimeModel::kNoConflictTarget));
  note_op(initiator, target, OpKind::kNbiAmoSet, offset);
  charge(initiator, target, OpKind::kNbiAmoSet, 8);
  if (effect_suppressed(initiator, target)) return;
  PendingEffect e;
  e.kind = PendingEffect::Kind::kAmoSet;
  e.dst = translate_u64(target, offset);
  e.value = value;
  enqueue_nbi(initiator, target, OpKind::kNbiAmoSet, 8, e, nullptr);
}

Nanos Fabric::deliver_until(Nanos now) {
  // Called from the sequencer (under its lock) each time global virtual
  // time reaches a new floor. Applies every effect whose deadline passed,
  // in (deadline, issue-sequence) order — deterministic.
  std::lock_guard<std::mutex> lk(pend_mu_);
  while (!pending_.empty() && pending_.top().deadline <= now)
    apply_top_locked();
  return pending_.empty() ? kNoPendingDeadline : pending_.top().deadline;
}

EffectPoolStats Fabric::effect_pool_stats() const {
  std::lock_guard<std::mutex> lk(pend_mu_);
  return pool_stats_;
}

int Fabric::pending(int pe) const {
  return pending_per_pe_[static_cast<std::size_t>(pe)].load(
      std::memory_order_relaxed);
}

int Fabric::pending_to(int pe) const {
  return pending_per_target_[static_cast<std::size_t>(pe)].load(
      std::memory_order_relaxed);
}

int Fabric::pending_to_synced(int pe) {
  // Under the parallel engine another initiator released mid-window can
  // enqueue an op targeting `pe` at a lex position *before* this read
  // (issue overhead is below the lookahead). Serialize at the global
  // frontier first so the count matches the serial schedule exactly.
  if (concurrent_) time_.global_sync(pe);
  return pending_to(pe);
}

void Fabric::quiet(int pe) {
  if (time_.is_virtual()) {
    // Advance until all of our in-flight ops are delivered. Deliveries
    // fire from the sequencer hook as time passes; the step is the
    // outermost tier's nbi delay so we overshoot by at most one delivery
    // window.
    const Nanos outer_delay = model_.params().link(model_.ntiers()).nbi_delay;
    const Nanos step = outer_delay > 0 ? outer_delay : Nanos{100};
    while (pending(pe) > 0) {
      if (crashes_armed_) maybe_crash(pe);  // a dying PE dies here too
      time_.advance(pe, step);
    }
    return;
  }
  // Real backend: block until the progress thread drains our ops.
  std::unique_lock<std::mutex> lk(pend_mu_);
  pend_cv_.wait(lk, [&] {
    return pending_per_pe_[static_cast<std::size_t>(pe)].load(
               std::memory_order_relaxed) == 0;
  });
}

// ------------------------------------------------------------ accounting

const FabricStats& Fabric::stats(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < npes());
  return stats_[static_cast<std::size_t>(pe)].s;
}

FabricStats Fabric::total_stats() const {
  FabricStats t;
  for (const auto& p : stats_) t.merge(p.s);
  return t;
}

void Fabric::reset_stats() {
  for (auto& p : stats_) p.s = FabricStats{};
}

void Fabric::publish_metrics(obs::MetricsRegistry& reg) const {
  auto set_per_pe = [&](obs::MetricId id, auto&& field) {
    for (int pe = 0; pe < npes(); ++pe)
      reg.set(id, pe, field(stats_[static_cast<std::size_t>(pe)].s));
  };
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    const auto id = reg.counter(
        std::string("fabric.ops.") + op_kind_name(static_cast<OpKind>(k)),
        "one-sided ops issued, by kind");
    set_per_pe(id, [k](const FabricStats& s) { return s.ops[k]; });
  }
  set_per_pe(reg.counter("fabric.remote_ops", "ops whose target != initiator"),
             [](const FabricStats& s) { return s.remote_ops; });
  set_per_pe(reg.counter("fabric.local_ops", "ops whose target == initiator"),
             [](const FabricStats& s) { return s.local_ops; });
  for (Tier t = 1; t <= model_.ntiers(); ++t) {
    const auto id =
        reg.counter("fabric.tier_ops.t" + std::to_string(t),
                    "remote ops whose target sits at this tier distance");
    set_per_pe(id, [t](const FabricStats& s) {
      return s.tier_ops[static_cast<std::size_t>(t - 1)];
    });
  }
  set_per_pe(reg.counter("fabric.bytes_put", "payload bytes written"),
             [](const FabricStats& s) { return s.bytes_put; });
  set_per_pe(reg.counter("fabric.bytes_got", "payload bytes read"),
             [](const FabricStats& s) { return s.bytes_got; });
  set_per_pe(reg.counter("fabric.blocking_ns", "initiator-blocking time"),
             [](const FabricStats& s) { return s.blocking_ns; });
  set_per_pe(
      reg.counter("fabric.occupancy_wait_ns", "queueing behind busy NICs"),
      [](const FabricStats& s) { return s.occupancy_wait_ns; });
  if (crashes_armed_)
    set_per_pe(reg.counter("fabric.dead_target_ops",
                           "ops issued against crashed PEs"),
               [](const FabricStats& s) { return s.dead_target_ops; });

  // Effect-pool counters are fabric-global (guarded by pend_mu_); they
  // land on PE 0's slot.
  const EffectPoolStats pool = effect_pool_stats();
  reg.set(reg.counter("fabric.effect_pool.inline", "inline nbi effects"), 0,
          pool.inline_effects);
  reg.set(reg.counter("fabric.effect_pool.slab_grabs", "large-put payloads"),
          0, pool.slab_grabs);
  reg.set(reg.counter("fabric.effect_pool.slab_allocs", "fresh slabs"), 0,
          pool.slab_allocs);

  if (faults_) {
    auto set_fault = [&](const char* name, const char* help, auto&& field) {
      const auto id = reg.counter(std::string("fabric.faults.") + name, help);
      for (int pe = 0; pe < npes(); ++pe)
        reg.set(id, pe, field(faults_->stats(pe)));
    };
    set_fault("spikes", "latency spikes injected",
              [](const FaultStats& s) { return s.spikes; });
    set_fault("drops", "lost transmissions",
              [](const FaultStats& s) { return s.drops; });
    set_fault("dups", "duplicated deliveries",
              [](const FaultStats& s) { return s.dups; });
    set_fault("retransmit_extra_ns", "delay paid to retransmits",
              [](const FaultStats& s) { return s.retransmit_extra_ns; });
    set_fault("spike_extra_ns", "delay paid to spikes",
              [](const FaultStats& s) { return s.spike_extra_ns; });
    set_fault("partition_hits", "ops that crossed an active partition",
              [](const FaultStats& s) { return s.partition_hits; });
    set_fault("partition_extra_ns", "delay paid to partition crossings",
              [](const FaultStats& s) { return s.partition_extra_ns; });
  }
}

}  // namespace sws::net
