// Network cost model: maps (operation, payload size, tier distance) to
// the initiator-blocking time the fabric charges.
//
// The model is tier-structured: a Topology (net/topology.hpp) says how
// far apart two PEs are, and a per-tier LinkParams table says what a hop
// at that distance costs. The flat defaults approximate an EDR
// InfiniBand fabric of the class the paper used (ConnectX-6, ~1.5 µs
// one-sided small-op completion latency, 100 Gb/s ≈ 12.5 B/ns payload
// bandwidth). Both protocols run over the same model, so the SDC:SWS
// comparisons depend only on *relative* costs, which is exactly what the
// reproduction needs (see DESIGN.md §2 and docs/topology.md).
#pragma once

#include <cstddef>
#include <vector>

#include "net/fault.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace sws::net {

/// Cost parameters of one topology tier's links. Tier t uses
/// NetworkParams::links[t-1]; the self tier (t == 0) is covered by the
/// local_* fields instead.
struct LinkParams {
  Nanos amo_latency = 1500;    ///< remote fetching atomic, initiator-blocking
  Nanos get_latency = 1500;    ///< remote get base latency
  Nanos put_latency = 1400;    ///< remote put base latency
  double bandwidth = 12.5;     ///< payload bytes per nanosecond
  Nanos nbi_delay = 1800;      ///< delivery delay of non-blocking ops
  /// NIC occupancy at the target: each op over this link holds the
  /// target's NIC for this long, so concurrent ops against one PE
  /// serialize — what makes a contended victim (thief storms, lock
  /// convoys) expensive. 0 disables the queueing model. Applied by the
  /// virtual-time backend.
  Nanos target_occupancy = 250;

  LinkParams scaled(double factor) const noexcept;
};

struct NetworkParams {
  /// Machine shape. Flat (the default) = one link tier covering every
  /// non-self pair, which is what the paper-figure benches use.
  TopologySpec topology{};
  /// links[t-1] parameterizes tier t. Must have exactly
  /// topology.ntiers() entries (validate()).
  std::vector<LinkParams> links{LinkParams{}};

  Nanos local_overhead = 60;       ///< any op whose target is the initiator
  double local_bandwidth = 100.0;  ///< local payload bytes per nanosecond
  Nanos nbi_issue_overhead = 80;   ///< initiator cost to *issue* an nbi op

  /// Adverse-network injection (chaos testing). Default plan injects
  /// nothing and the fabric skips the injector entirely — zero cost and
  /// zero behavioural effect when off.
  FaultPlan faults{};

  /// Flat single-tier fabric with the EDR-class defaults (== {}).
  static NetworkParams flat() noexcept { return {}; }
  /// Two-level fabric: unbounded nodes of `pes_per_node` PEs. Intra-node
  /// links are derived from the inter-node defaults: latencies scaled by
  /// `intra_scale` (shared-memory ops ~200 ns vs 1.5 µs) at
  /// `intra_bandwidth` B/ns. pes_per_node <= 0 degrades to flat().
  static NetworkParams two_level(int pes_per_node, double intra_scale = 0.15,
                                 double intra_bandwidth = 40.0);
  /// N-tier fabric over `spec`: tier links derived from the defaults with
  /// geometric scaling — each step inward scales latency by `step_scale`
  /// and bandwidth by `step_bandwidth`, so tiered(two_level spec) ==
  /// two_level(n). Outermost tier keeps the flat defaults.
  static NetworkParams tiered(TopologySpec spec, double step_scale = 0.15,
                              double step_bandwidth = 3.2);

  /// Uniform latency scaling across every tier, for the latency-sweep
  /// ablations.
  NetworkParams scaled(double factor) const;

  /// Tier t's link table entry (t >= 1, clamped to the last entry so a
  /// short table still answers).
  const LinkParams& link(Tier t) const noexcept;
  LinkParams& link(Tier t) noexcept;

  /// Cheapest possible cross-PE *blocking* op over any tier — the floor of
  /// every remote charge, and therefore a safe conservative lookahead for
  /// the parallel engine (ParallelTimeModel): nothing a PE does inside a
  /// window of this width can affect another PE's state within the window.
  /// (nbi delivery needs no floor — pending deadlines cap windows
  /// directly.) 0 when the link table is empty.
  Nanos min_remote_latency() const noexcept;

  /// Reject inconsistent configurations: the link table must match the
  /// topology's tier count, the spec must hold `npes` PEs, and rates
  /// must be positive. The runtime calls this at construction, so a
  /// conflicting topology/link spec fails loudly instead of silently
  /// costing the wrong tier.
  void validate(int npes) const;
};

class NetworkModel {
 public:
  NetworkModel() : NetworkModel(NetworkParams{}, 0) {}
  explicit NetworkModel(NetworkParams p, int npes = 0);

  const NetworkParams& params() const noexcept { return p_; }
  const Topology& topology() const noexcept { return topo_; }
  int ntiers() const noexcept { return topo_.ntiers(); }

  /// Re-bind the topology to a new PE count (Fabric::reset).
  void resize(int npes);

  /// Tier distance of `target` as seen by `initiator` (0 = self).
  Tier tier(int initiator, int target) const noexcept {
    return topo_.distance(initiator, target);
  }

  /// Initiator-blocking cost of an operation crossing `t` tiers.
  Nanos cost(OpKind kind, std::size_t bytes, Tier t) const noexcept;

  /// Virtual delay between issuing a non-blocking op and its memory
  /// effect becoming visible at a target `t` tiers away.
  Nanos delivery_delay(std::size_t bytes, Tier t) const noexcept;

 private:
  NetworkParams p_{};
  Topology topo_{};
};

}  // namespace sws::net
