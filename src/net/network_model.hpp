// Network cost model: maps (operation, payload size, locality) to the
// initiator-blocking time the fabric charges.
//
// The defaults approximate an EDR InfiniBand fabric of the class the paper
// used (ConnectX-6, ~1.5 µs one-sided small-op completion latency,
// 100 Gb/s ≈ 12.5 B/ns payload bandwidth). Both protocols run over the
// same model, so the SDC:SWS comparisons depend only on *relative* costs,
// which is exactly what the reproduction needs (see DESIGN.md §2).
#pragma once

#include <cstddef>

#include "net/fault.hpp"
#include "net/types.hpp"

namespace sws::net {

/// Where an operation's target sits relative to its initiator.
enum class Locality { kSelf, kIntraNode, kInterNode };

struct NetworkParams {
  Nanos amo_latency = 1500;    ///< remote fetching atomic, initiator-blocking
  Nanos get_latency = 1500;    ///< remote get base latency
  Nanos put_latency = 1400;    ///< remote put base latency
  double bandwidth = 12.5;     ///< remote payload bytes per nanosecond

  /// Two-level fabric: PEs are grouped into nodes of this many; targets on
  /// the initiator's node pay `intra_scale` of the remote latencies and
  /// enjoy `intra_bandwidth`. 0 = flat fabric (everything inter-node),
  /// which is the default the paper-figure benches use. The evaluation
  /// cluster was 44 nodes x 48 cores.
  int pes_per_node = 0;
  double intra_scale = 0.15;       ///< shared-memory ops ~200 ns vs 1.5 µs
  double intra_bandwidth = 40.0;   ///< bytes per nanosecond within a node
  Nanos local_overhead = 60;   ///< any op whose target is the initiator
  double local_bandwidth = 100.0;  ///< local payload bytes per nanosecond
  Nanos nbi_delay = 1800;      ///< delivery delay of non-blocking ops
  Nanos nbi_issue_overhead = 80;  ///< initiator cost to *issue* an nbi op
  /// NIC occupancy at the target: each remote op holds the target's NIC
  /// for this long, so concurrent ops against one PE serialize — what
  /// makes a contended victim (thief storms, lock convoys) expensive.
  /// 0 disables the queueing model. Applied by the virtual-time backend.
  Nanos target_occupancy = 250;

  /// Adverse-network injection (chaos testing). Default plan injects
  /// nothing and the fabric skips the injector entirely — zero cost and
  /// zero behavioural effect when off.
  FaultPlan faults{};

  /// Uniform scaling helper for latency-sweep ablations.
  NetworkParams scaled(double factor) const noexcept;
};

class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(NetworkParams p) noexcept : p_(p) {}

  const NetworkParams& params() const noexcept { return p_; }

  /// Locality of `target` as seen by `initiator`.
  Locality locality(int initiator, int target) const noexcept;

  /// Initiator-blocking cost of an operation.
  Nanos cost(OpKind kind, std::size_t bytes, Locality loc) const noexcept;
  /// Back-compat convenience: remote == inter-node.
  Nanos cost(OpKind kind, std::size_t bytes, bool remote) const noexcept {
    return cost(kind, bytes, remote ? Locality::kInterNode : Locality::kSelf);
  }

  /// Virtual delay between issuing a non-blocking op and its memory effect
  /// becoming visible at the target.
  Nanos delivery_delay(std::size_t bytes, Locality loc) const noexcept;
  Nanos delivery_delay(std::size_t bytes) const noexcept {
    return delivery_delay(bytes, Locality::kInterNode);
  }

 private:
  NetworkParams p_{};
};

}  // namespace sws::net
