// Indexed binary min-heap over PE ids keyed by (vtime, pe) — the ready
// structure of the virtual-time sequencer. Replaces the O(N) linear scan
// that ran on every advance(): top() is O(1), update()/remove() are
// O(log N), and the (vtime, pe) comparator reproduces the sequencer's
// legacy tie-break (lowest id at equal time) exactly, so schedules are
// bit-identical to the scan.
//
// The sequencer exploits one staleness freedom: the *active* PE's key may
// lag its true clock while it runs below its horizon (run-to-horizon
// batching, see time_model.hpp). That is safe because the stale key is a
// lower bound that still sorts first — the true clock stays strictly
// below every other key — and the key is refreshed via update() before
// any pick. Callers other than VirtualTimeModel should treat keys as
// authoritative.
//
// Not thread-safe; the sequencer guards it with its own mutex.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "net/types.hpp"

namespace sws::net {

class ReadyHeap {
 public:
  /// Sentinel vtime meaning "no element": larger than any real clock.
  static constexpr Nanos kNoVtime = ~Nanos{0};

  /// Re-initialize with PEs [0, n), all at vtime 0. Identity order is
  /// already a valid heap for equal keys, so this is O(n).
  void rebuild(int n) {
    SWS_ASSERT(n >= 0);
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(n));
    pos_.assign(static_cast<std::size_t>(n), -1);
    for (int pe = 0; pe < n; ++pe) {
      pos_[static_cast<std::size_t>(pe)] = static_cast<int>(heap_.size());
      heap_.push_back(Entry{0, pe});
    }
  }

  /// Re-initialize *empty* but able to hold any pe in [0, n). The sharded
  /// sequencer keys each shard's heap by the full PE id space and inserts
  /// only its own subset; parked and running PEs move in and out freely.
  void clear(int n) {
    SWS_ASSERT(n >= 0);
    heap_.clear();
    pos_.assign(static_cast<std::size_t>(n), -1);
  }

  /// Add `pe` (currently absent) at `vtime`.
  void insert(int pe, Nanos vtime) {
    SWS_ASSERT(pe >= 0 && pe < static_cast<int>(pos_.size()));
    SWS_ASSERT_MSG(!contains(pe), "insert of a PE already in the heap");
    pos_[static_cast<std::size_t>(pe)] = static_cast<int>(heap_.size());
    heap_.push_back(Entry{vtime, pe});
    sift_up(heap_.size() - 1);
  }

  bool empty() const noexcept { return heap_.empty(); }
  int size() const noexcept { return static_cast<int>(heap_.size()); }
  bool contains(int pe) const {
    return pe >= 0 && pe < static_cast<int>(pos_.size()) &&
           pos_[static_cast<std::size_t>(pe)] >= 0;
  }

  /// PE id with the minimum (vtime, pe); -1 when empty.
  int top() const noexcept { return heap_.empty() ? -1 : heap_[0].pe; }
  Nanos top_vtime() const noexcept {
    return heap_.empty() ? kNoVtime : heap_[0].vtime;
  }

  /// Minimum vtime among every element except the top — the top's
  /// "horizon": it stays the unique minimum while strictly below this.
  /// Because the second-smallest (vtime, pe) entry is always a child of
  /// the root, only heap_[1] and heap_[2] need inspecting.
  Nanos second_vtime() const noexcept {
    Nanos s = kNoVtime;
    if (heap_.size() > 1) s = heap_[1].vtime;
    if (heap_.size() > 2 && heap_[2].vtime < s) s = heap_[2].vtime;
    return s;
  }

  /// Visit every element in unspecified (heap-internal) order. The sharded
  /// sequencer's driver uses this to scan parked global PEs for per-target
  /// window caps; O(size), no allocation.
  template <typename F>
  void for_each(F&& f) const {
    for (const Entry& e : heap_) f(e.pe, e.vtime);
  }

  Nanos vtime_of(int pe) const {
    SWS_ASSERT(contains(pe));
    return heap_[static_cast<std::size_t>(pos_[static_cast<std::size_t>(pe)])]
        .vtime;
  }

  /// Re-key `pe` to `vtime` — works for both increase-key (the common
  /// advance() case, sift down) and decrease-key (sift up).
  void update(int pe, Nanos vtime) {
    SWS_ASSERT(contains(pe));
    const auto i =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(pe)]);
    const Nanos old = heap_[i].vtime;
    heap_[i].vtime = vtime;
    if (vtime > old)
      sift_down(i);
    else if (vtime < old)
      sift_up(i);
  }

  /// Remove `pe` (pe_end): swap with the last slot, then restore the heap
  /// property in whichever direction the moved element violates it.
  void remove(int pe) {
    SWS_ASSERT(contains(pe));
    const auto i =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(pe)]);
    pos_[static_cast<std::size_t>(pe)] = -1;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      pos_[static_cast<std::size_t>(heap_[i].pe)] = static_cast<int>(i);
      heap_.pop_back();
      if (i > 0 && less(heap_[i], heap_[parent(i)]))
        sift_up(i);
      else
        sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

 private:
  struct Entry {
    Nanos vtime;
    int pe;
  };

  static std::size_t parent(std::size_t i) noexcept { return (i - 1) / 2; }

  static bool less(const Entry& a, const Entry& b) noexcept {
    return a.vtime != b.vtime ? a.vtime < b.vtime : a.pe < b.pe;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t p = parent(i);
      if (!less(heap_[i], heap_[p])) break;
      swap_entries(i, p);
      i = p;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && less(heap_[l], heap_[best])) best = l;
      if (r < n && less(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      swap_entries(i, best);
      i = best;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[static_cast<std::size_t>(heap_[a].pe)] = static_cast<int>(a);
    pos_[static_cast<std::size_t>(heap_[b].pe)] = static_cast<int>(b);
  }

  std::vector<Entry> heap_;
  std::vector<int> pos_;  ///< pe -> heap index, -1 = absent
};

}  // namespace sws::net
