// Multi-tier machine topology: the shared description of how PEs group
// into cores/sockets/nodes/racks that the cost model, victim selection,
// fault presets, and per-tier accounting all consume.
//
// A TopologySpec lists group sizes; a Topology binds a spec to a concrete
// PE count and answers distance and peer-enumeration queries. The tier
// distance between two PEs is 0 for self, 1 for the innermost shared
// group (e.g. same node), rising by one for each level that must be
// crossed (same rack = 2, different rack = 3 on a rack/node/core
// machine). The paper's evaluation cluster — 44 nodes x 48 cores — is
// spec "44x48"; distbdd-spin17/wstealer's four thread-distance victim
// tiers (VERYNEAR..VERYFAR) correspond to distances 1..4 of a four-level
// spec. See docs/topology.md for the grammar and the policy catalog.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace sws::net {

/// Shape of the machine, independent of PE count.
struct TopologySpec {
  /// Group sizes, innermost-first: {48, 4, 2} = 48 PEs per node, 4 nodes
  /// per rack, 2 racks. Empty = flat: a single link tier covering every
  /// non-self pair (the shape all paper-figure benches use).
  std::vector<int> levels;

  /// Flat fabric (one tier, no grouping).
  static TopologySpec flat() noexcept { return {}; }
  /// The classic two-level shape: nodes of `pes_per_node` PEs.
  static TopologySpec two_level(int pes_per_node);
  /// Parse an outermost-first spec: "44x48" = 44 nodes x 48 cores,
  /// "2x4x48" = 2 racks x 4 nodes x 48 cores. "flat" or "" = flat.
  /// Throws std::invalid_argument on malformed input.
  static TopologySpec parse(const std::string& s);
  /// Inverse of parse: "2x4x48", or "flat".
  std::string to_string() const;

  /// Number of link tiers (distance values 1..ntiers). Flat = 1.
  int ntiers() const noexcept {
    return levels.empty() ? 1 : static_cast<int>(levels.size());
  }
  /// Maximum PEs the spec describes (product of levels); 0 = unbounded.
  long long capacity() const noexcept;
  bool is_flat() const noexcept { return levels.empty(); }

  bool operator==(const TopologySpec&) const = default;
};

/// A spec bound to a PE count: the queryable topology. The last group at
/// any level may be short (npes need not fill the spec's capacity),
/// mirroring how a job may get a partial rack.
class Topology {
 public:
  /// Flat topology over `npes` PEs (default: 0 — distance queries still
  /// work; peer enumeration is empty).
  Topology() = default;
  explicit Topology(int npes) : Topology(TopologySpec::flat(), npes) {}
  Topology(TopologySpec spec, int npes);

  int npes() const noexcept { return npes_; }
  int ntiers() const noexcept { return spec_.ntiers(); }
  const TopologySpec& spec() const noexcept { return spec_; }

  /// Tier distance from `a` to `b`: 0 iff a == b, else the innermost
  /// level whose group contains both (ntiers when only the whole machine
  /// does). Symmetric.
  Tier distance(int a, int b) const noexcept;

  /// PEs per tier-`t` group as specced (t in [0, ntiers]; t=0 is the PE
  /// itself, t=ntiers the whole machine).
  long long group_size(Tier t) const noexcept;
  /// Index of the tier-`t` group containing `pe`.
  int group_of(int pe, Tier t) const noexcept;
  /// Number of (possibly short) tier-`t` groups over the bound PE count.
  int group_count(Tier t) const noexcept;
  /// All PEs of tier-`t` group `g`, ascending.
  std::vector<int> group_members(Tier t, int g) const;

  /// Number of PEs at exactly distance `t` from `pe`.
  int peer_count(int pe, Tier t) const noexcept;
  /// k-th (0-based, ascending PE order) peer of `pe` at exactly distance
  /// `t`; O(1) and allocation-free — the sampling primitive victim
  /// policies draw through. Requires 0 <= k < peer_count(pe, t).
  int peer(int pe, Tier t, int k) const noexcept;
  /// All PEs at exactly distance `t` from `pe`, ascending.
  std::vector<int> peers(int pe, Tier t) const;

 private:
  /// [begin, end) of `pe`'s tier-`t` group, clipped to npes.
  void group_range(int pe, Tier t, int& begin, int& end) const noexcept;

  TopologySpec spec_{};
  int npes_ = 0;
  /// block_[t] = specced PEs per tier-t group; block_[0] = 1.
  std::array<long long, kMaxTiers + 1> block_{};
};

}  // namespace sws::net
