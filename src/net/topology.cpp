#include "net/topology.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace sws::net {

namespace {

constexpr long long kUnbounded = 0;

void check_spec(const std::vector<int>& levels) {
  if (levels.size() > static_cast<std::size_t>(kMaxTiers))
    throw std::invalid_argument("topology spec has more than " +
                                std::to_string(kMaxTiers) + " tiers");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const bool outermost = i + 1 == levels.size();
    if (levels[i] < 0 || (!outermost && levels[i] < 1) ||
        (outermost && levels[i] != kUnbounded && levels[i] < 1))
      throw std::invalid_argument(
          "topology level sizes must be positive (only the outermost may "
          "be '*')");
  }
}

}  // namespace

TopologySpec TopologySpec::two_level(int pes_per_node) {
  if (pes_per_node <= 0) return flat();
  // Unbounded node count: the classic pes_per_node shape never bounded
  // how many nodes a run may use.
  TopologySpec s;
  s.levels = {pes_per_node, 0};
  return s;
}

TopologySpec TopologySpec::parse(const std::string& s) {
  if (s.empty() || s == "flat") return flat();
  std::vector<int> outer_first;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t x = s.find('x', pos);
    const std::string tok =
        s.substr(pos, x == std::string::npos ? std::string::npos : x - pos);
    if (tok == "*") {
      if (!outer_first.empty())
        throw std::invalid_argument(
            "topology spec: '*' is only valid as the outermost level");
      outer_first.push_back(0);
    } else {
      std::size_t used = 0;
      int v = 0;
      try {
        v = std::stoi(tok, &used);
      } catch (const std::exception&) {
        throw std::invalid_argument("topology spec: bad level '" + tok + "'");
      }
      if (used != tok.size() || v < 1)
        throw std::invalid_argument("topology spec: bad level '" + tok + "'");
      outer_first.push_back(v);
    }
    if (x == std::string::npos) break;
    pos = x + 1;
  }
  TopologySpec spec;
  spec.levels.assign(outer_first.rbegin(), outer_first.rend());
  check_spec(spec.levels);
  return spec;
}

std::string TopologySpec::to_string() const {
  if (levels.empty()) return "flat";
  std::string out;
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    if (!out.empty()) out += 'x';
    out += *it == kUnbounded ? std::string("*") : std::to_string(*it);
  }
  return out;
}

long long TopologySpec::capacity() const noexcept {
  if (levels.empty()) return 0;
  long long c = 1;
  for (int l : levels) {
    if (l == kUnbounded) return 0;
    c *= l;
  }
  return c;
}

Topology::Topology(TopologySpec spec, int npes)
    : spec_(std::move(spec)), npes_(npes < 0 ? 0 : npes) {
  check_spec(spec_.levels);
  const long long cap = spec_.capacity();
  if (cap > 0 && npes_ > cap)
    throw std::invalid_argument("topology spec " + spec_.to_string() +
                                " holds " + std::to_string(cap) +
                                " PEs but the run has " +
                                std::to_string(npes_));
  block_[0] = 1;
  const int nt = ntiers();
  for (Tier t = 1; t <= nt; ++t) {
    const int level =
        spec_.levels.empty() ? kUnbounded
                             : spec_.levels[static_cast<std::size_t>(t - 1)];
    if (level == kUnbounded) {
      // Outermost (or flat): one group spanning every PE of the run.
      block_[t] = block_[t - 1] > npes_ ? block_[t - 1] : npes_;
      if (block_[t] < 1) block_[t] = 1;
    } else {
      block_[t] = block_[t - 1] * level;
    }
  }
}

Tier Topology::distance(int a, int b) const noexcept {
  if (a == b) return 0;
  const int nt = ntiers();
  for (Tier t = 1; t < nt; ++t)
    if (a / block_[t] == b / block_[t]) return t;
  return nt;
}

long long Topology::group_size(Tier t) const noexcept {
  SWS_ASSERT(t >= 0 && t <= ntiers());
  return block_[t];
}

int Topology::group_of(int pe, Tier t) const noexcept {
  SWS_ASSERT(t >= 0 && t <= ntiers());
  return static_cast<int>(pe / block_[t]);
}

int Topology::group_count(Tier t) const noexcept {
  SWS_ASSERT(t >= 0 && t <= ntiers());
  if (npes_ == 0) return 0;
  return static_cast<int>((npes_ + block_[t] - 1) / block_[t]);
}

void Topology::group_range(int pe, Tier t, int& begin,
                           int& end) const noexcept {
  const long long b = (pe / block_[t]) * block_[t];
  long long e = b + block_[t];
  if (e > npes_) e = npes_;
  begin = static_cast<int>(b);
  end = static_cast<int>(e);
}

std::vector<int> Topology::group_members(Tier t, int g) const {
  SWS_ASSERT(t >= 0 && t <= ntiers());
  const long long b = g * block_[t];
  long long e = b + block_[t];
  if (e > npes_) e = npes_;
  std::vector<int> out;
  for (long long pe = b; pe < e; ++pe) out.push_back(static_cast<int>(pe));
  return out;
}

int Topology::peer_count(int pe, Tier t) const noexcept {
  SWS_ASSERT(t >= 1 && t <= ntiers());
  int ob, oe, ib, ie;
  group_range(pe, t, ob, oe);
  group_range(pe, t - 1, ib, ie);
  return (oe - ob) - (ie - ib);
}

int Topology::peer(int pe, Tier t, int k) const noexcept {
  SWS_ASSERT(t >= 1 && t <= ntiers());
  int ob, oe, ib, ie;
  group_range(pe, t, ob, oe);
  group_range(pe, t - 1, ib, ie);
  SWS_ASSERT(k >= 0 && k < (oe - ob) - (ie - ib));
  // Peers below the inner group come first (ascending order), the rest
  // continue after it.
  const int before = ib - ob;
  return k < before ? ob + k : ie + (k - before);
}

std::vector<int> Topology::peers(int pe, Tier t) const {
  const int n = peer_count(pe, t);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) out.push_back(peer(pe, t, k));
  return out;
}

}  // namespace sws::net
