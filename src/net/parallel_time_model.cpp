#include "net/parallel_time_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sws::net {

ParallelTimeModel::ParallelTimeModel(int npes, int shards, Nanos lookahead)
    : lookahead_(lookahead), shards_requested_(std::max(shards, 1)) {
  if (npes > 0) reset(npes);
}

ParallelTimeModel::~ParallelTimeModel() = default;

void ParallelTimeModel::reset(int npes) {
  SWS_ASSERT(npes > 0);
  // Quiescent between runs: either no run happened since the last reset
  // (running_ still pre-armed at the old npes) or every PE reached pe_end
  // (running_ drained to 0). Anything else means live PE threads.
  SWS_ASSERT_MSG(running_.load(std::memory_order_relaxed) == 0 ||
                     running_.load(std::memory_order_relaxed) ==
                         static_cast<int>(slots_.size()),
                 "reset while PE threads are active");
  if (static_cast<int>(slots_.size()) != npes) {
    slots_.clear();
    slots_.reserve(static_cast<std::size_t>(npes));
    for (int pe = 0; pe < npes; ++pe)
      slots_.push_back(std::make_unique<PeSlot>());
  }
  const int nshards = std::min(shards_requested_, npes);
  if (static_cast<int>(shards_.size()) != nshards) {
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s) shards_.push_back(std::make_unique<Shard>());
  }
  // Contiguous blocks: the first (npes % nshards) shards get one extra PE.
  shard_of_.assign(static_cast<std::size_t>(npes), 0);
  {
    const int base = npes / nshards, extra = npes % nshards;
    int pe = 0;
    for (int s = 0; s < nshards; ++s) {
      const int take = base + (s < extra ? 1 : 0);
      for (int i = 0; i < take; ++i) shard_of_[static_cast<std::size_t>(pe++)] = s;
    }
    SWS_ASSERT(pe == npes);
  }
  for (auto& slot : slots_) {
    slot->vtime.store(0, std::memory_order_relaxed);
    slot->horizon = 0;
    slot->in_global = false;
    slot->gtarget = kOpaqueTarget;
    slot->park_kind = PeSlot::Park::kPriv;
    slot->solo_license = false;
    slot->released.store(false, std::memory_order_relaxed);
  }
  for (auto& sh : shards_) {
    sh->priv.clear(npes);
    sh->glob.clear(npes);
  }
  stats_ = EngineStats{};
  parks_.store(0, std::memory_order_relaxed);
  license_skips_.store(0, std::memory_order_relaxed);
  shard_releases_.assign(static_cast<std::size_t>(nshards), 0);
  release_scratch_.clear();
  release_scratch_.reserve(static_cast<std::size_t>(npes));
  defer_scratch_.clear();
  defer_scratch_.reserve(static_cast<std::size_t>(npes));
  cap_.assign(static_cast<std::size_t>(npes), ReadyHeap::kNoVtime);
  cap_epoch_.assign(static_cast<std::size_t>(npes), 0);
  epoch_ = 0;
  next_sample_ = sample_interval_;
  // Every PE thread is "running" until it parks in pe_begin; the last
  // arrival drives the first release (all clocks 0 -> one full window).
  running_.store(npes, std::memory_order_relaxed);
}

void ParallelTimeModel::park_and_wait(int pe, PeSlot::Park kind) {
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  Shard& sh = *shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(pe)])];
  // Disarm the wake flag *before* becoming visible in a heap: the driver
  // only touches this slot after popping it, and it can only pop what the
  // shard-mutex-ordered insert below has published.
  slot.released.store(false, std::memory_order_relaxed);
  slot.park_kind = kind;
  slot.solo_license = false;  // any park invalidates the lex-min proof
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    (kind != PeSlot::Park::kPriv ? sh.glob : sh.priv)
        .insert(pe, slot.vtime.load(std::memory_order_relaxed));
  }
  parks_.fetch_add(1, std::memory_order_relaxed);
  // The parker counts as running until this decrement, so no other thread
  // can observe zero (and drive) while this PE is half-parked; exactly one
  // thread per quiescence sees the 1 -> 0 transition.
  if (running_.fetch_sub(1, std::memory_order_acq_rel) == 1) drive();
  // Wait on the slot channel, not the shard mutex: the driver has already
  // dropped its locks by the time it notifies, so this wake never blocks
  // behind drive(). The acquire pairs with the driver's release-store and
  // makes the freshly written horizon visible.
  std::unique_lock<std::mutex> lk(slot.mu);
  slot.cv.wait(lk, [&] { return slot.released.load(std::memory_order_acquire); });
}

void ParallelTimeModel::drive() {
  // Sole executor: running_ just hit zero, every unfinished PE is parked.
  // The shard locks freeze the heaps and order every parker's insert
  // before the pops below; they are dropped before any wake so released
  // PEs (who may park again immediately) never contend with this batch's
  // remaining notifies.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& sh : shards_) locks.emplace_back(sh->mu);

  // Global frontier: lexicographic (vtime, pe) minimum over every parked
  // PE. Real keys are always < kNoVtime, so the sentinel never wins.
  Nanos fc = ReadyHeap::kNoVtime;
  int fp = -1;
  bool fglob = false;
  auto consider = [&fc, &fp, &fglob](const ReadyHeap& h, bool is_glob) {
    const int p = h.top();
    if (p < 0) return;
    const Nanos c = h.top_vtime();
    if (c < fc || (c == fc && p < fp)) {
      fc = c;
      fp = p;
      fglob = is_glob;
    }
  };
  for (auto& sh : shards_) {
    consider(sh->priv, false);
    consider(sh->glob, true);
  }
  if (fp < 0) return;  // every PE reached pe_end; nothing left to release

  // Time floor moved to fc: deliver everything due, learn the earliest
  // deadline still pending. It caps every release below so no delivery is
  // skipped over (same contract as the serial sequencer).
  const Nanos nd = hook_ ? hook_(fc) : kNoPendingDeadline;

  // Windowed sampling: every PE thread is parked, so the hook reads
  // clocks, metrics, and scheduler state race-free. One call per crossed
  // boundary, in order; observation-only — schedules stay byte-identical
  // to sampling off (and to the serial engine, per the A/B suite).
  if (sample_interval_ > 0) {
    while (fc >= next_sample_) {
      sample_hook_(next_sample_);
      next_sample_ += sample_interval_;
    }
  }

  if (!fglob) {
    // Window attempt: wake every private PE strictly below its horizon
    // W(p). The base edge is the lookahead (or an earlier pending nbi
    // deadline); parked gated PEs shrink it only by their declared
    // conflict footprint. A mid-charge park resumes by applying its
    // blocking op's effect on its target, so it caps that target at its
    // clock; an opaque-footprint gate (fault injection) caps everyone; a
    // pre-charge or sync park resumes into gated-shared state only and
    // caps nobody — its op's effect lands at least one full lookahead
    // past its park clock, provably outside this window.
    Nanos w = fc + lookahead_;
    enum { kLook, kGlob, kDead } cause = kLook;
    if (nd < w) {
      w = nd;
      cause = kDead;
    }
    // Cap windows at the next sampling boundary so the driver regains
    // control (and samples) exactly when the floor crosses it. A smaller
    // window never changes the schedule, only the release granularity.
    if (sample_interval_ > 0 && next_sample_ < w) w = next_sample_;
    ++epoch_;
    Nanos opaque = ReadyHeap::kNoVtime;
    for (auto& sh : shards_)
      sh->glob.for_each([&](int p, Nanos v) {
        if (v >= w) return;
        const PeSlot& s = *slots_[static_cast<std::size_t>(p)];
        if (s.gtarget == kOpaqueTarget && s.park_kind != PeSlot::Park::kSync) {
          if (v < opaque) opaque = v;
        } else if (s.gtarget >= 0 && s.park_kind == PeSlot::Park::kMid) {
          auto& ce = cap_epoch_[static_cast<std::size_t>(s.gtarget)];
          auto& cv = cap_[static_cast<std::size_t>(s.gtarget)];
          if (ce != epoch_ || v < cv) {
            ce = epoch_;
            cv = v;
          }
        }
      });
    if (opaque < w) {
      w = opaque;
      cause = kGlob;
    }
    release_scratch_.clear();
    defer_scratch_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ReadyHeap& heap = shards_[s]->priv;
      while (heap.top() >= 0 && heap.top_vtime() < w) {
        const int p = heap.top();
        const Nanos pv = heap.top_vtime();
        heap.remove(p);
        PeSlot& slot = *slots_[static_cast<std::size_t>(p)];
        Nanos wp = w;
        if (cap_epoch_[static_cast<std::size_t>(p)] == epoch_ &&
            cap_[static_cast<std::size_t>(p)] < wp)
          wp = cap_[static_cast<std::size_t>(p)];
        if (wp <= pv) {
          // An in-flight op lands on this PE at or before its clock (a
          // clock tie included — conservative): it must wait its exact
          // turn via the solo path.
          defer_scratch_.push_back(p);
          ++stats_.deferred;
          continue;
        }
        if (wp < w) ++stats_.cap_target;
        slot.horizon = wp;
        release_scratch_.push_back(p);
        ++shard_releases_[s];
      }
      for (const int p : defer_scratch_)
        if (shard_of_[static_cast<std::size_t>(p)] == static_cast<int>(s))
          heap.insert(p, slots_[static_cast<std::size_t>(p)]->vtime.load(
                             std::memory_order_relaxed));
      defer_scratch_.erase(
          std::remove_if(defer_scratch_.begin(), defer_scratch_.end(),
                         [&](int p) {
                           return shard_of_[static_cast<std::size_t>(p)] ==
                                  static_cast<int>(s);
                         }),
          defer_scratch_.end());
    }
    if (!release_scratch_.empty()) {
      ++stats_.windows;
      stats_.window_pes += release_scratch_.size();
      if (cause == kLook)
        ++stats_.cap_lookahead;
      else if (cause == kGlob)
        ++stats_.cap_global;
      else
        ++stats_.cap_deadline;
      // Horizons and the running count are in place before anyone wakes:
      // a released PE that re-parks instantly decrements from the full
      // batch size, so running_ cannot hit zero until every batch member
      // (notified or not) has run and parked again.
      running_.store(static_cast<int>(release_scratch_.size()),
                     std::memory_order_release);
      locks.clear();  // heaps are final for this release; let parkers in
      for (const int p : release_scratch_) {
        PeSlot& slot = *slots_[static_cast<std::size_t>(p)];
        {
          std::lock_guard<std::mutex> g(slot.mu);
          slot.released.store(true, std::memory_order_release);
        }
        slot.cv.notify_one();
      }
      return;
    }
    // Even the private frontier is capped at its own clock (an in-flight
    // op lands exactly there) — release it alone with its exact horizon.
  }

  // Solo release of the frontier with its *exact* horizon: the next
  // event's time, +1 when the frontier keeps winning the (vtime, pe) tie
  // (it may run events at the shared clock before yielding). This is what
  // reproduces the serial total order for globally ordered actions.
  Shard& fsh = *shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(fp)])];
  (fglob ? fsh.glob : fsh.priv).remove(fp);
  Nanos m = ReadyHeap::kNoVtime;
  int q = -1;
  {
    Nanos mc = ReadyHeap::kNoVtime;
    int mp = -1;
    bool mg = false;
    auto consider2 = [&mc, &mp, &mg](const ReadyHeap& h, bool is_glob) {
      const int p = h.top();
      if (p < 0) return;
      const Nanos c = h.top_vtime();
      if (c < mc || (c == mc && p < mp)) {
        mc = c;
        mp = p;
        mg = is_glob;
      }
    };
    for (auto& sh : shards_) {
      consider2(sh->priv, false);
      consider2(sh->glob, true);
    }
    m = mc;
    q = mp;
    (void)mg;
  }
  Nanos h;
  if (q < 0) {
    h = nd;  // alone in the system: only pending deliveries can preempt
  } else {
    h = m + ((fp < q) ? Nanos{1} : Nanos{0});
    if (nd < h) h = nd;
  }
  // Sampling boundary cap (next_sample_ > fc after the catch-up above, so
  // the progress invariant below still holds).
  if (sample_interval_ > 0 && next_sample_ < h) h = next_sample_;
  // Progress: the frontier is the lex minimum, so a clock tie means the
  // other PE has a higher id (fp < q) and the +1 applies; the hook only
  // reports deadlines strictly beyond the floor it swept.
  SWS_ASSERT_MSG(h > fc, "solo horizon must exceed the frontier clock");
  if (fglob)
    ++stats_.solo_global;
  else
    ++stats_.solo_private;
  ++shard_releases_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(fp)])];
  PeSlot& slot = *slots_[static_cast<std::size_t>(fp)];
  slot.horizon = h;
  // Solo license: below this exact horizon the PE stays the unique lex
  // minimum (everyone else is parked at >= m, no delivery is due < h), so
  // its next globally ordered action may begin without parking — the park
  // would be released right back with identical state. Window releases
  // never grant this (peers run concurrently).
  slot.solo_license = true;
  running_.store(1, std::memory_order_release);
  locks.clear();
  {
    std::lock_guard<std::mutex> g(slot.mu);
    slot.released.store(true, std::memory_order_release);
  }
  slot.cv.notify_one();
}

void ParallelTimeModel::pe_begin(int pe) {
  // Park at clock 0; the last arrival drives the first window.
  park_and_wait(pe, PeSlot::Park::kPriv);
}

void ParallelTimeModel::pe_end(int pe) {
  (void)pe;
  // The finishing PE is running (not in any heap): just stop counting it.
  // If it was the last runner, someone parked must be released next.
  if (running_.fetch_sub(1, std::memory_order_acq_rel) == 1) drive();
}

void ParallelTimeModel::advance(int pe, Nanos dt) {
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  const Nanos nv = slot.vtime.load(std::memory_order_relaxed) + dt;
  slot.vtime.store(nv, std::memory_order_release);
  if (nv < slot.horizon) return;  // in-window fast path: no lock, no wake
  // Crossing inside a globally ordered op parks into the global heap so
  // the op resumes exactly at its serial position; such a mid-charge park
  // caps concurrent windows by the gate's declared footprint.
  park_and_wait(pe, slot.in_global ? PeSlot::Park::kMid : PeSlot::Park::kPriv);
}

Nanos ParallelTimeModel::now(int pe) const {
  return slots_[static_cast<std::size_t>(pe)]->vtime.load(
      std::memory_order_acquire);
}

void ParallelTimeModel::clamp_horizon(int pe, Nanos deadline) {
  // Only the sole running PE enqueues (nbi paths are globally gated), so
  // a plain shrink of its own horizon is race-free; the driver re-learns
  // pending deadlines from the delivery hook at every release.
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  if (deadline < slot.horizon) slot.horizon = deadline;
}

void ParallelTimeModel::set_delivery_hook(DeliveryHook hook) {
  hook_ = std::move(hook);
}

void ParallelTimeModel::set_sample_hook(SampleHook hook, Nanos interval_ns) {
  sample_hook_ = std::move(hook);
  sample_interval_ = sample_hook_ ? interval_ns : 0;
  next_sample_ = sample_interval_;
}

void ParallelTimeModel::global_begin(int pe) {
  global_begin(pe, kOpaqueTarget);
}

void ParallelTimeModel::global_begin(int pe, int target) {
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  SWS_ASSERT_MSG(!slot.in_global, "nested global_begin");
  slot.gtarget = target;
  slot.in_global = true;
  if (slot.solo_license &&
      slot.vtime.load(std::memory_order_relaxed) < slot.horizon) {
    // Solo license: this PE is still the unique lex minimum, so the park
    // below would be granted right back with identical state. Skip it —
    // the charge/effect already run in exact serial position.
    license_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  park_and_wait(pe, PeSlot::Park::kBegin);
}

void ParallelTimeModel::global_end(int pe) {
  // No park: the PE continues privately under the horizon it was granted.
  slots_[static_cast<std::size_t>(pe)]->in_global = false;
}

void ParallelTimeModel::global_sync(int pe) {
  // A pure read barrier: park at the current clock and return once every
  // lex-earlier global action has applied (the solo release guarantees
  // it). The PE is not inside an op, so in_global stays false.
  PeSlot& slot = *slots_[static_cast<std::size_t>(pe)];
  if (slot.solo_license &&
      slot.vtime.load(std::memory_order_relaxed) < slot.horizon) {
    // Unique lex minimum: every lex-earlier global action has applied.
    license_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.gtarget = kNoConflictTarget;
  park_and_wait(pe, PeSlot::Park::kSync);
}

ParallelTimeModel::EngineStats ParallelTimeModel::engine_stats() const {
  EngineStats s = stats_;
  s.parks = parks_.load(std::memory_order_relaxed);
  s.license_skips = license_skips_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sws::net
