#include "net/fault.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/topology.hpp"

namespace sws::net {

namespace {

// Distinct stream tag so fault decisions never collide with workload RNG
// streams derived from the same user seed.
constexpr std::uint64_t kFaultStreamTag = 0xFA17'5EED'0000'0000ULL;

Nanos scaled(Nanos base, double factor) noexcept {
  return static_cast<Nanos>(static_cast<double>(base) * factor);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int npes) : plan_(std::move(plan)) {
  SWS_CHECK(plan_.spike_rate >= 0.0 && plan_.spike_rate <= 1.0,
            "spike_rate must be a probability");
  // drop_rate == 1.0 is allowed: max_retransmits bounds the loss loop, so
  // even certain loss yields a finite (cap-sized) delay.
  SWS_CHECK(plan_.drop_rate >= 0.0 && plan_.drop_rate <= 1.0,
            "drop_rate must be a probability");
  SWS_CHECK(plan_.dup_rate >= 0.0 && plan_.dup_rate <= 1.0,
            "dup_rate must be a probability");
  SWS_CHECK(plan_.jitter >= 0.0, "jitter must be non-negative");
  SWS_CHECK(plan_.spike_factor >= 1.0, "spike_factor must be >= 1");
  for (const SlowWindow& w : plan_.slow_windows)
    SWS_CHECK(w.factor >= 1.0 && w.from_ns <= w.until_ns,
              "malformed slow window");
  for (PartitionWindow& w : plan_.partitions) {
    SWS_CHECK(w.charge_factor >= 1.0 && w.from_ns <= w.until_ns,
              "malformed partition window");
    std::sort(w.pes.begin(), w.pes.end());  // membership by binary search
  }
  reset(npes);
}

bool FaultInjector::in_partition(const PartitionWindow& w, int pe) noexcept {
  return std::binary_search(w.pes.begin(), w.pes.end(), pe);
}

void FaultInjector::reset(int npes) {
  pes_.clear();
  pes_.resize(static_cast<std::size_t>(npes < 0 ? 0 : npes));
  new_run();
}

void FaultInjector::new_run() {
  for (std::size_t pe = 0; pe < pes_.size(); ++pe)
    pes_[pe].rng = Xoshiro256(plan_.seed ^ kFaultStreamTag, pe);
}

Nanos FaultInjector::charge_penalty(int initiator, int target, OpKind kind,
                                    Nanos now, Nanos base) {
  PerPe& p = pes_[static_cast<std::size_t>(initiator)];
  Nanos extra = 0;
  if (plan_.spikes_enabled() &&
      (plan_.spike_op_mask & op_bit(kind)) != 0 &&
      (plan_.spike_target < 0 || plan_.spike_target == target) &&
      p.rng.uniform() < plan_.spike_rate) {
    const Nanos add = scaled(base, plan_.spike_factor - 1.0);
    ++p.stats.spikes;
    p.stats.spike_extra_ns += add;
    extra += add;
  }
  for (const SlowWindow& w : plan_.slow_windows) {
    if (w.pe == initiator && now >= w.from_ns && now < w.until_ns) {
      const Nanos add = scaled(base, w.factor - 1.0);
      ++p.stats.slow_hits;
      p.stats.slow_extra_ns += add;
      extra += add;
    }
  }
  for (const PartitionWindow& w : plan_.partitions) {
    if (initiator != target && now >= w.from_ns && now < w.until_ns &&
        in_partition(w, initiator) != in_partition(w, target)) {
      const Nanos add = scaled(base, w.charge_factor - 1.0);
      ++p.stats.partition_hits;
      p.stats.partition_extra_ns += add;
      extra += add;
    }
  }
  return extra;
}

FaultInjector::Delivery FaultInjector::delivery_verdict(int initiator,
                                                        int target,
                                                        OpKind kind, Nanos now,
                                                        Nanos base_delay) {
  Delivery v;
  if (!plan_.delivery_faults_enabled() ||
      (plan_.delivery_op_mask & op_bit(kind)) == 0)
    return v;
  PerPe& p = pes_[static_cast<std::size_t>(initiator)];
  // Partition windows are deterministic (no stream draw): a crossing nbi
  // op during the cut simply delivers late.
  for (const PartitionWindow& w : plan_.partitions) {
    if (initiator != target && now >= w.from_ns && now < w.until_ns &&
        in_partition(w, initiator) != in_partition(w, target)) {
      ++p.stats.partition_hits;
      p.stats.partition_extra_ns += w.delivery_extra_ns;
      v.extra_delay += w.delivery_extra_ns;
    }
  }
  // Draw order is fixed (jitter, drops, dup) so streams replay identically.
  if (plan_.jitter > 0.0) {
    const Nanos add =
        static_cast<Nanos>(p.rng.uniform() * plan_.jitter *
                           static_cast<double>(base_delay));
    p.stats.jitter_extra_ns += add;
    v.extra_delay += add;
  }
  if (plan_.drop_rate > 0.0) {
    std::uint32_t lost = 0;
    while (lost < plan_.max_retransmits &&
           p.rng.uniform() < plan_.drop_rate)
      ++lost;
    if (lost > 0) {
      const Nanos add = static_cast<Nanos>(lost) * plan_.retransmit_ns;
      p.stats.drops += lost;
      p.stats.retransmit_extra_ns += add;
      v.extra_delay += add;
    }
  }
  if (plan_.dup_rate > 0.0 && p.rng.uniform() < plan_.dup_rate) {
    ++p.stats.dups;
    v.duplicate = true;
    v.dup_extra_delay = plan_.dup_delay_ns;
  }
  return v;
}

const FaultStats& FaultInjector::stats(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(pes_.size()));
  return pes_[static_cast<std::size_t>(pe)].stats;
}

FaultStats FaultInjector::total_stats() const {
  FaultStats t;
  for (const PerPe& p : pes_) t.merge(p.stats);
  return t;
}

// ---------------------------------------------------- topology presets

FaultPlan slow_group_plan(const Topology& topo, Tier tier, int group,
                          Nanos from_ns, Nanos until_ns, double factor) {
  SWS_CHECK(tier >= 1 && tier <= topo.ntiers(), "slow group: bad tier");
  FaultPlan plan;
  for (int pe : topo.group_members(tier, group))
    plan.slow_windows.push_back(SlowWindow{pe, from_ns, until_ns, factor});
  SWS_CHECK(!plan.slow_windows.empty(), "slow group: empty group");
  return plan;
}

FaultPlan partition_group_plan(const Topology& topo, Tier tier, int group,
                               Nanos from_ns, Nanos until_ns,
                               double charge_factor, Nanos delivery_extra_ns) {
  SWS_CHECK(tier >= 1 && tier <= topo.ntiers(), "partition group: bad tier");
  PartitionWindow w;
  w.pes = topo.group_members(tier, group);
  SWS_CHECK(!w.pes.empty(), "partition group: empty group");
  w.from_ns = from_ns;
  w.until_ns = until_ns;
  w.charge_factor = charge_factor;
  w.delivery_extra_ns = delivery_extra_ns;
  FaultPlan plan;
  plan.partitions.push_back(std::move(w));
  return plan;
}

FaultPlan slow_rack_plan(const Topology& topo, int rack, Nanos from_ns,
                         Nanos until_ns, double factor) {
  // "Rack" = the largest grouping below the whole machine; on a two-level
  // fabric that is the node tier itself.
  const Tier t = topo.ntiers() > 1 ? topo.ntiers() - 1 : 1;
  return slow_group_plan(topo, t, rack, from_ns, until_ns, factor);
}

FaultPlan partitioned_node_plan(const Topology& topo, int node, Nanos from_ns,
                                Nanos until_ns) {
  return partition_group_plan(topo, 1, node, from_ns, until_ns);
}

FaultPlan crash_plan(int pe, Nanos at_ns) {
  SWS_CHECK(pe >= 0, "crash plan: bad pe");
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{pe, at_ns});
  return plan;
}

FaultPlan crash_group_plan(const Topology& topo, Tier tier, int group,
                           Nanos at_ns) {
  SWS_CHECK(tier >= 1 && tier <= topo.ntiers(), "crash group: bad tier");
  FaultPlan plan;
  for (int pe : topo.group_members(tier, group))
    plan.crashes.push_back(CrashEvent{pe, at_ns});
  SWS_CHECK(!plan.crashes.empty(), "crash group: empty group");
  return plan;
}

FaultPlan node_failure_plan(const Topology& topo, int node, Nanos at_ns) {
  return crash_group_plan(topo, 1, node, at_ns);
}

FaultPlan rack_failure_plan(const Topology& topo, int rack, Nanos at_ns) {
  const Tier t = topo.ntiers() > 1 ? topo.ntiers() - 1 : 1;
  return crash_group_plan(topo, t, rack, at_ns);
}

}  // namespace sws::net
