// Deterministic pseudo-random number generation.
//
// The runtime needs per-PE streams that are (a) reproducible across runs
// given a seed, (b) statistically independent between PEs, and (c) cheap.
// SplitMix64 seeds Xoshiro256** streams; stream i for seed s is derived by
// jumping the SplitMix sequence, matching the standard recommendation.
#pragma once

#include <cstdint>

namespace sws {

/// SplitMix64: tiny, passes BigCrush, used for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 so that low-entropy seeds still give good state.
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// Derive the generator for logical stream `stream` of `seed` —
  /// distinct streams for distinct (seed, stream) pairs.
  Xoshiro256(std::uint64_t seed, std::uint64_t stream) noexcept
      : Xoshiro256(mix(seed, stream)) {}

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's multiply-shift
  /// with rejection to remove modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 sm(seed ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL));
    return sm.next();
  }

  std::uint64_t s_[4];
};

}  // namespace sws
