#include "common/options.hpp"

#include <stdexcept>

namespace sws {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) throw std::invalid_argument("bare '--' not supported");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Options::has(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  used_[key] = true;
  return true;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_[key] = true;
  return it->second;
}

std::int64_t Options::get(const std::string& key,
                          std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_[key] = true;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double Options::get(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_[key] = true;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Options::get(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_[key] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option --" + key + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_)
    if (!used_.count(k)) out.push_back(k);
  return out;
}

}  // namespace sws
