// ASCII table / CSV renderer for the benchmark harness.
//
// Every bench binary reproduces a paper table or figure as rows of
// (series, x, y...) values; Table gives them a uniform, aligned rendering
// plus machine-readable CSV so results can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sws {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the column headers. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  /// Render an aligned ASCII table with a title banner.
  void print(std::ostream& os) const;
  /// Render RFC-4180-ish CSV (no quoting of embedded commas expected).
  void print_csv(std::ostream& os) const;

  const std::string& title() const noexcept { return title_; }
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sws
