// Compile-time helpers for packing multiple unsigned fields into one
// 64-bit word — the representation trick at the heart of the SWS stealval
// (paper §4, Figures 3 and 4).
//
// A Field<Shift, Width> describes a contiguous bit range. All operations
// are constexpr and mask-safe: writing a value wider than the field is a
// programming error caught by SWS_ASSERT in debug paths via checked_set.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace sws {

template <unsigned Shift, unsigned Width>
struct Field {
  static_assert(Width >= 1 && Width <= 64, "field width out of range");
  static_assert(Shift < 64 && Shift + Width <= 64, "field exceeds 64 bits");

  static constexpr unsigned kShift = Shift;
  static constexpr unsigned kWidth = Width;
  /// Maximum representable value of the field.
  static constexpr std::uint64_t kMax =
      (Width == 64) ? std::numeric_limits<std::uint64_t>::max()
                    : ((std::uint64_t{1} << Width) - 1);
  /// Mask of the field within the packed word.
  static constexpr std::uint64_t kMask = kMax << Shift;

  /// Extract this field's value from a packed word.
  static constexpr std::uint64_t get(std::uint64_t word) noexcept {
    return (word >> Shift) & kMax;
  }

  /// Return `word` with this field replaced by `value` (value truncated
  /// to the field width).
  static constexpr std::uint64_t set(std::uint64_t word,
                                     std::uint64_t value) noexcept {
    return (word & ~kMask) | ((value & kMax) << Shift);
  }

  /// As set(), but asserts the value fits.
  static std::uint64_t checked_set(std::uint64_t word, std::uint64_t value) {
    SWS_ASSERT_MSG(value <= kMax, "bitfield value overflow");
    return set(word, value);
  }

  /// The packed-word increment that adds 1 to this field.
  /// This is what makes a remote fetch-add on the *whole word* act as a
  /// fetch-add on the *field* — the key enabler of the SWS single-AMO steal.
  static constexpr std::uint64_t unit() noexcept {
    return std::uint64_t{1} << Shift;
  }

  /// True if adding `n` field-units to `word` would carry out of the field.
  static constexpr bool would_overflow(std::uint64_t word,
                                       std::uint64_t n) noexcept {
    return get(word) + n > kMax;
  }
};

}  // namespace sws
