#include "common/rng.hpp"

#include "common/assert.hpp"

namespace sws {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  SWS_ASSERT(bound > 0);
  // Lemire's method: take the high 64 bits of a 128-bit product; reject
  // the small biased region at the bottom of the range.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace sws
