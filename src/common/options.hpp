// Tiny command-line option parser for examples and bench binaries.
//
// Supports --key=value, --key value, and bare --flag booleans. Unknown
// options are an error (fail fast beats silently ignored typos in a
// benchmark sweep). Not a general-purpose CLI library on purpose.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sws {

class Options {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get(const std::string& key, std::int64_t fallback) const;
  double get(const std::string& key, double fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Keys that were parsed but never queried — useful for typo detection:
  /// call after all get()s and warn/throw if non-empty.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace sws
