#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sws {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mu;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

bool set_log_level(const std::string& name) noexcept {
  std::string s;
  s.reserve(name.size());
  for (char c : name) s.push_back(static_cast<char>(std::tolower(c)));
  if (s == "trace") set_log_level(LogLevel::kTrace);
  else if (s == "debug") set_log_level(LogLevel::kDebug);
  else if (s == "info") set_log_level(LogLevel::kInfo);
  else if (s == "warn") set_log_level(LogLevel::kWarn);
  else if (s == "error") set_log_level(LogLevel::kError);
  else if (s == "off") set_log_level(LogLevel::kOff);
  else return false;
  return true;
}

namespace detail {

void log_emit(LogLevel lvl, const char* file, int line,
              const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::fprintf(stderr, "[%-5s] %s:%d %s\n", level_name(lvl), base, line,
               msg.c_str());
}

}  // namespace detail
}  // namespace sws
