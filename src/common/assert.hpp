// Assertion macros for SWS.
//
// SWS_ASSERT is an internal-invariant check compiled in all build types
// (the runtime is a concurrency library; silent corruption is worse than
// the branch cost). SWS_CHECK is for user-facing argument validation and
// throws std::invalid_argument. SWS_UNREACHABLE marks impossible paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sws {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "SWS_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace sws

#define SWS_ASSERT(expr)                                        \
  do {                                                          \
    if (!(expr)) ::sws::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SWS_ASSERT_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) ::sws::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define SWS_CHECK(expr, msg)                                          \
  do {                                                                \
    if (!(expr))                                                      \
      throw std::invalid_argument(std::string("SWS_CHECK failed: ") + \
                                  (msg) + " (" #expr ")");            \
  } while (0)

#define SWS_UNREACHABLE() \
  ::sws::assert_fail("unreachable", __FILE__, __LINE__, "")
