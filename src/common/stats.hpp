// Statistics accumulators used by the benchmark harness and runtime
// counters: streaming mean/variance (Welford), min/max/range, and a
// fixed-bucket log-scale histogram for latency distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sws {

/// Streaming summary statistics over doubles (Welford's algorithm, so a
/// single pass is numerically stable even for millions of samples).
class Summary {
 public:
  void add(double x) noexcept;
  void merge(const Summary& other) noexcept;
  void reset() noexcept { *this = Summary{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double range() const noexcept { return n_ ? max_ - min_ : 0.0; }
  double sum() const noexcept { return sum_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Relative standard deviation in percent (paper Fig 7d/8d).
  double rel_stddev_pct() const noexcept;
  /// Relative range (max-min)/mean in percent (paper Fig 7d/8d).
  double rel_range_pct() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log2-bucketed histogram of non-negative integer samples (e.g. latency
/// in nanoseconds). Bucket b holds samples in [2^b, 2^(b+1)).
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t x) noexcept;
  void merge(const LogHistogram& other) noexcept;
  /// Per-bucket saturating subtraction: the windowed delta of two
  /// cumulative histograms (`later.subtract(earlier)`). Buckets never go
  /// negative even if the operands are unrelated; the total is recomputed
  /// from the surviving buckets so it stays consistent.
  void subtract(const LogHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t bucket(std::size_t b) const noexcept { return buckets_[b]; }
  /// Approximate quantile q in [0,1). Reports the lower bound of the
  /// bucket holding the q-th sample — an underestimate of the true
  /// quantile by at most 2x (one log2 bucket). q=1.0 is special: it
  /// reports the top occupied bucket's inclusive *upper* bound, i.e. a
  /// value every recorded sample is <= (saturating to UINT64_MAX in the
  /// last bucket).
  std::uint64_t quantile(double q) const noexcept;

  /// Multi-line human-readable rendering of occupied buckets.
  std::string to_string() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace sws
