// Minimal leveled logger.
//
// The runtime is timing-sensitive: logging defaults to Warn, is routed
// through a single mutex-protected sink, and each call site checks the
// level before formatting.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace sws {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level; reads are relaxed-atomic.
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Parse "trace|debug|info|warn|error|off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool set_log_level(const std::string& name) noexcept;

namespace detail {
void log_emit(LogLevel lvl, const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace sws

#define SWS_LOG(lvl, expr)                                       \
  do {                                                           \
    if (static_cast<int>(lvl) >= static_cast<int>(::sws::log_level())) { \
      std::ostringstream sws_log_os_;                            \
      sws_log_os_ << expr;                                       \
      ::sws::detail::log_emit(lvl, __FILE__, __LINE__, sws_log_os_.str()); \
    }                                                            \
  } while (0)

#define SWS_TRACE(expr) SWS_LOG(::sws::LogLevel::kTrace, expr)
#define SWS_DEBUG(expr) SWS_LOG(::sws::LogLevel::kDebug, expr)
#define SWS_INFO(expr) SWS_LOG(::sws::LogLevel::kInfo, expr)
#define SWS_WARN(expr) SWS_LOG(::sws::LogLevel::kWarn, expr)
#define SWS_ERROR(expr) SWS_LOG(::sws::LogLevel::kError, expr)
