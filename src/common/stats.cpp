#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace sws {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford partials.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::rel_stddev_pct() const noexcept {
  return mean() != 0.0 ? 100.0 * stddev() / mean() : 0.0;
}

double Summary::rel_range_pct() const noexcept {
  return mean() != 0.0 ? 100.0 * range() / mean() : 0.0;
}

void LogHistogram::add(std::uint64_t x) noexcept {
  const auto b = static_cast<std::size_t>(x == 0 ? 0 : std::bit_width(x) - 1);
  ++buckets_[b];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
}

void LogHistogram::subtract(const LogHistogram& other) noexcept {
  total_ = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b] -= std::min(buckets_[b], other.buckets_[b]);
    total_ += buckets_[b];
  }
}

std::uint64_t LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t before = seen;
    seen += buckets_[b];
    if (seen <= target) continue;
    // q=1.0 reports the top occupied bucket's inclusive upper bound, so
    // "max <= quantile(1.0)" actually holds — a lower estimate would
    // understate the max by up to 2x.
    const std::uint64_t lower = b == 0 ? 0 : std::uint64_t{1} << b;
    const std::uint64_t upper = b + 1 >= kBuckets
                                    ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << (b + 1)) - 1;
    if (q >= 1.0) return upper;
    // Interior quantiles interpolate within the bucket: the target rank
    // falls on the (rank+1)-th of `count` samples spread evenly across
    // [lower, upper], so p95/p99 no longer collapse to the bucket's lower
    // bound (which under-reported tails by up to 2x).
    const std::uint64_t rank = target - before;   // 0-based within bucket
    const std::uint64_t count = buckets_[b];
    const double frac =
        (static_cast<double>(rank) + 0.5) / static_cast<double>(count);
    return lower + static_cast<std::uint64_t>(
                       static_cast<double>(upper - lower) * frac);
  }
  return ~std::uint64_t{0};  // unreachable: seen reaches total_ > target
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    os << "[2^" << b << ", 2^" << b + 1 << "): " << buckets_[b] << "\n";
  }
  return os.str();
}

}  // namespace sws
