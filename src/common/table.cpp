#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace sws {

void Table::set_header(std::vector<std::string> header) {
  SWS_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SWS_CHECK(header_.empty() || row.size() == header_.size(),
            "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width.resize(std::max(width.size(), row.size())),
          width[c] = std::max(width[c], row[c].size());

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << std::right << row[c];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
      total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit_row(row);
  os << "\n";
}

void Table::print_csv(std::ostream& os) const {
  os << "# " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace sws
